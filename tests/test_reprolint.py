"""Tests for the ``tools.reprolint`` static analyzer.

Every rule family gets at least one true-positive and one true-negative
fixture project (written into ``tmp_path`` with the same ``src`` /
``tests`` / ``examples`` layout the real repo uses), plus:

* suppression semantics (reasoned suppressions silence findings; reasonless,
  unknown-rule and stale suppressions are RL000);
* the RL004 call-graph walk across a helper function in another module;
* the JSON report schema;
* the meta-test: the repo itself is reprolint-clean;
* the wall-clock allowlist is *exact* — emptying it produces findings in
  precisely the allowlisted files and nowhere else.
"""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # `tools` lives at the repo root, not in src/
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import run_reprolint  # noqa: E402
from tools.reprolint.cli import main as reprolint_main  # noqa: E402
from tools.reprolint.engine import REPORT_VERSION, ReprolintError  # noqa: E402
from tools.reprolint.rules import registered_rule_ids  # noqa: E402
from tools.reprolint.rules.rl001_determinism import WALL_CLOCK_ALLOWLIST  # noqa: E402


def write_project(root: Path, files: dict[str, str]) -> list[str]:
    """Write ``files`` (relative path -> source) under ``root``; return dirs."""
    top_dirs: list[str] = []
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        top = relative.split("/", 1)[0]
        if top not in top_dirs:
            top_dirs.append(top)
    return top_dirs


def lint(root: Path, files: dict[str, str]):
    return run_reprolint(write_project(root, files), root=root)


def rules_of(report) -> list[str]:
    return [finding.rule for finding in report.findings]


# --------------------------------------------------------------------------- #
# RL001 determinism
# --------------------------------------------------------------------------- #
class TestRL001Determinism:
    def test_unseeded_rng_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import random
                    import numpy as np

                    def draw():
                        a = random.Random()
                        b = np.random.default_rng()
                        return a, b
                    """
            },
        )
        assert rules_of(report) == ["RL001", "RL001"]
        assert "unseeded" in report.findings[0].message

    def test_seeded_rng_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import random
                    import numpy as np

                    def draw(seed: int):
                        a = random.Random(seed)
                        b = np.random.default_rng(seed)
                        return a, b
                    """
            },
        )
        assert report.findings == []

    def test_module_level_random_flagged_through_aliases(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import numpy as xp
                    from random import randint

                    def draw():
                        return randint(1, 6) + xp.random.rand()
                    """
            },
        )
        assert sorted(rules_of(report)) == ["RL001", "RL001"]
        messages = " ".join(finding.message for finding in report.findings)
        assert "random.randint" in messages
        assert "numpy.random.rand" in messages

    def test_wall_clock_flagged_in_src_but_not_tests(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import time

                    def stamp():
                        return time.time()
                    """,
                "tests/test_mod.py": """
                    import time

                    def test_stamp():
                        assert time.time() > 0
                    """,
            },
        )
        assert rules_of(report) == ["RL001"]
        assert report.findings[0].path == "src/pkg/mod.py"

    def test_allowlisted_file_clean(self, tmp_path):
        allowlisted = next(iter(WALL_CLOCK_ALLOWLIST))
        report = lint(
            tmp_path,
            {
                allowlisted: """
                    __all__ = ["overhead"]

                    import time

                    def overhead():
                        return time.perf_counter()
                    """
            },
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# RL002 picklability
# --------------------------------------------------------------------------- #
class TestRL002Picklability:
    def test_unfrozen_spec_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/spec.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class TunerSpec:
                        name: str = "mab"
                    """
            },
        )
        assert rules_of(report) == ["RL002"]
        assert "frozen" in report.findings[0].message

    def test_fleet_spec_classes_covered(self, tmp_path):
        # TenantSpec and FleetConfig cross the same worker boundaries as the
        # run_competition specs, so RL002 must police their frozen-ness too.
        report = lint(
            tmp_path,
            {
                "src/pkg/fleet.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class TenantSpec:
                        tenant_id: str = "t0"

                    @dataclass
                    class FleetConfig:
                        batch_scoring: bool = True
                    """
            },
        )
        assert rules_of(report) == ["RL002", "RL002"]
        symbols = {finding.symbol for finding in report.findings}
        assert symbols == {"TenantSpec", "FleetConfig"}

    def test_scoring_config_covered(self, tmp_path):
        # ScoringConfig rides inside MabConfig / SimulationOptions /
        # FleetConfig across the same worker boundaries; frozen-ness is what
        # keeps the packed-scoring snapshot picklable.
        report = lint(
            tmp_path,
            {
                "src/pkg/scoring.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class ScoringConfig:
                        strategy: str = "monolithic"
                    """
            },
        )
        assert rules_of(report) == ["RL002"]
        assert report.findings[0].symbol == "ScoringConfig"

    def test_frozen_spec_with_factory_default_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/spec.py": """
                    from dataclasses import dataclass, field

                    @dataclass(frozen=True)
                    class TunerSpec:
                        name: str = "mab"
                        tags: list = field(default_factory=lambda: [])
                    """
            },
        )
        assert report.findings == []

    def test_callable_field_and_lambda_call_site_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/spec.py": """
                    from dataclasses import dataclass
                    from typing import Callable

                    @dataclass(frozen=True)
                    class DatabaseSpec:
                        builder: Callable[[], int] | None = None
                    """,
                "examples/run.py": """
                    from pkg.spec import DatabaseSpec

                    spec = DatabaseSpec(builder=lambda: 1)
                    """,
            },
        )
        assert sorted(rules_of(report)) == ["RL002", "RL002"]
        paths = {finding.path for finding in report.findings}
        assert paths == {"src/pkg/spec.py", "examples/run.py"}

    def test_non_spec_class_ignored(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/other.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class ScratchState:
                        counter: int = 0
                    """
            },
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# RL003 registry discipline
# --------------------------------------------------------------------------- #
class TestRL003RegistryDiscipline:
    def test_if_elif_dispatch_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/dispatch.py": """
                    def build(name: str):
                        if name == "mab":
                            return 1
                        elif name == "pdtool":
                            return 2
                        return 0
                    """
            },
        )
        assert rules_of(report) == ["RL003"]
        assert "mab" in report.findings[0].message

    def test_membership_tuple_dispatch_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/dispatch.py": """
                    def is_baseline(name: str) -> bool:
                        if name in ("noindex", "pdtool"):
                            return True
                        return False
                    """
            },
        )
        assert rules_of(report) == ["RL003"]

    def test_single_comparison_and_foreign_strings_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/dispatch.py": """
                    def check(name: str, regime: str) -> int:
                        if name == "mab":
                            return 1
                        if regime == "static":
                            return 2
                        elif regime == "shifting":
                            return 3
                        return 0
                    """
            },
        )
        assert report.findings == []

    def test_registry_module_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/repro/api/registry.py": """
                    __all__ = ["resolve"]

                    def resolve(name: str) -> int:
                        if name == "mab":
                            return 1
                        elif name == "pdtool":
                            return 2
                        raise KeyError(name)
                    """
            },
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# RL004 shard safety
# --------------------------------------------------------------------------- #
SHARD_FIXTURE_BANDIT = """
    class Scorer:
        def scores(self, contexts):
            return contexts

    class Bandit:
        def __init__(self):
            self._v = 0
            self._theta = None

        def scorer(self) -> "Scorer":
            return Scorer()

        def refresh(self):
            self._theta = 1

        def peek(self):
            return self._v
    """


class TestRL004ShardSafety:
    def test_mutation_through_helper_in_other_module_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/core/bandit.py": SHARD_FIXTURE_BANDIT,
                "src/core/tuner.py": """
                    from .bandit import Bandit


                    def _refresh_helper(bandit: Bandit):
                        bandit.refresh()


                    class MabTuner:
                        def __init__(self):
                            self.bandit = Bandit()

                        def _score_sharded(self, shards):
                            scorer = self.bandit.scorer()

                            def score_shard(shard):
                                _refresh_helper(self.bandit)
                                return scorer.scores(shard)

                            return [score_shard(shard) for shard in shards]
                    """,
            },
        )
        assert rules_of(report) == ["RL004"]
        finding = report.findings[0]
        assert finding.path == "src/core/bandit.py"
        assert "_theta" in finding.message
        assert "score_shard" in finding.message

    def test_snapshot_only_scoring_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/core/bandit.py": SHARD_FIXTURE_BANDIT,
                "src/core/tuner.py": """
                    from .bandit import Bandit


                    class MabTuner:
                        def __init__(self):
                            self.bandit = Bandit()

                        def _score_sharded(self, shards):
                            # Reading live state and refreshing OUTSIDE the
                            # shard closure is legal: only score_shard fans out.
                            self.bandit.refresh()
                            scorer = self.bandit.scorer()

                            def score_shard(shard):
                                return scorer.scores(shard)

                            return [score_shard(shard) for shard in shards]
                    """,
            },
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# RL005 public surface
# --------------------------------------------------------------------------- #
class TestRL005PublicSurface:
    def test_example_importing_internals_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "examples/demo.py": """
                    from repro.api import TuningSession
                    from repro.core.tuner import MabTuner
                    """
            },
        )
        assert rules_of(report) == ["RL005"]
        assert "repro.core.tuner" in report.findings[0].message

    def test_deprecated_import_flagged_in_src(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/repro/extra/glue.py": """
                    from repro.harness.interface import run_simulation
                    """
            },
        )
        assert rules_of(report) == ["RL005"]
        assert "deprecated" in report.findings[0].message

    def test_dunder_all_audit(self, tmp_path):
        report = lint(
            tmp_path,
            {
                # Missing __all__ entirely.
                "src/repro/api/one.py": """
                    def public_helper() -> int:
                        return 1
                    """,
                # __all__ exports a ghost and omits a public def.
                "src/repro/api/two.py": """
                    __all__ = ["ghost"]

                    def visible() -> int:
                        return 2
                    """,
            },
        )
        by_path = {}
        for finding in report.findings:
            by_path.setdefault(finding.path, []).append(finding.message)
        assert "no __all__" in by_path["src/repro/api/one.py"][0]
        two_messages = " ".join(by_path["src/repro/api/two.py"])
        assert "ghost" in two_messages
        assert "visible" in two_messages

    def test_consistent_module_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/repro/api/three.py": """
                    __all__ = ["visible"]

                    def visible() -> int:
                        return 3

                    def _internal() -> int:
                        return 4
                    """
            },
        )
        assert report.findings == []

    def test_fleet_modules_are_audited(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/repro/fleet/roster.py": """
                    def roster() -> list:
                        return []
                    """
            },
        )
        assert rules_of(report) == ["RL005"]
        assert "no __all__" in report.findings[0].message

    def test_lazy_exports_via_module_getattr_accepted(self, tmp_path):
        # PEP 562 lazy re-export: names absent from the static bindings are
        # fine when a top-level __getattr__ exists and a lazy-export table
        # names them as string literals.
        report = lint(
            tmp_path,
            {
                "src/repro/api/lazy.py": """
                    __all__ = ["Eager", "Lazy"]

                    _LAZY_EXPORTS = frozenset({"Lazy"})


                    class Eager:
                        pass


                    def __getattr__(name: str) -> object:
                        raise AttributeError(name)
                    """
            },
        )
        assert report.findings == []

    def test_deprecated_scoring_kwargs_flagged(self, tmp_path):
        # The legacy shard_by / batch_scoring spellings on the config
        # constructors normalise into ScoringConfig; new code must not use
        # them outside the shim modules themselves.
        report = lint(
            tmp_path,
            {
                "src/repro/extra/wiring.py": """
                    from repro.api import SimulationOptions
                    from repro.core.config import MabConfig
                    from repro.fleet import FleetConfig

                    config = MabConfig(shard_by="table", shard_workers=2)
                    options = SimulationOptions(shard_by="hash")
                    fleet = FleetConfig(batch_scoring=False)
                    """
            },
        )
        assert rules_of(report) == ["RL005"] * 4
        messages = " ".join(finding.message for finding in report.findings)
        assert "scoring=ScoringConfig(...)" in messages
        assert "shard_by" in messages and "batch_scoring" in messages

    def test_scoring_kwargs_allowed_in_shims_tests_and_other_callees(self, tmp_path):
        report = lint(
            tmp_path,
            {
                # The shim module itself may spell the legacy knobs.
                "src/repro/core/config.py": """
                    def _rebuild(cls):
                        return cls(shard_by="table")


                    class MabConfig:
                        pass
                    """,
                # Tests exercise the deprecation path on purpose.
                "tests/test_legacy.py": """
                    from repro.core.config import MabConfig

                    config = MabConfig(shard_by="table")
                    """,
                # Same-named parameters on other callables are the live API.
                "src/repro/extra/partition.py": """
                    from repro.core.sharding import shard_arms

                    shards = shard_arms([], shard_by="table")
                    """,
            },
        )
        assert report.findings == []

    def test_lazy_export_still_flagged_without_module_getattr(self, tmp_path):
        # The same lazy table without a __getattr__ cannot actually resolve
        # the name, so the export-drift finding must survive.
        report = lint(
            tmp_path,
            {
                "src/repro/api/broken.py": """
                    __all__ = ["Lazy"]

                    _LAZY_EXPORTS = frozenset({"Lazy"})
                    """
            },
        )
        assert rules_of(report) == ["RL005"]
        assert "'Lazy'" in report.findings[0].message


# --------------------------------------------------------------------------- #
# RL000 suppressions
# --------------------------------------------------------------------------- #
class TestSuppressions:
    def test_reasoned_suppression_silences_finding(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import time

                    def stamp():
                        return time.time()  # reprolint: disable=RL001 -- demo clock, not on a decision path
                    """
            },
        )
        assert report.findings == []
        assert len(report.suppressed) == 1
        finding, suppression = report.suppressed[0]
        assert finding.rule == "RL001"
        assert suppression.reason is not None

    def test_standalone_suppression_applies_to_next_line(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import time

                    def stamp():
                        # reprolint: disable=RL001 -- demo clock, not on a decision path
                        return time.time()
                    """
            },
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_reasonless_suppression_is_rl000(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import time

                    def stamp():
                        return time.time()  # reprolint: disable=RL001
                    """
            },
        )
        assert rules_of(report) == ["RL000"]
        assert "reason" in report.findings[0].message
        # It still suppresses — the RL001 is in the suppressed list.
        assert [f.rule for f, _ in report.suppressed] == ["RL001"]

    def test_unknown_rule_and_stale_suppression_are_rl000(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    def fine() -> int:
                        x = 1  # reprolint: disable=RL999 -- no such rule
                        y = 2  # reprolint: disable=RL001 -- nothing here to suppress
                        return x + y
                    """
            },
        )
        messages = sorted(finding.message for finding in report.findings)
        assert rules_of(report) == ["RL000", "RL000"]
        assert any("unknown rule RL999" in message for message in messages)
        assert any("stale suppression" in message for message in messages)

    def test_suppression_inside_string_literal_inert(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": '''
                    DOC = """
                    # reprolint: disable=RL001 -- this is documentation, not a comment
                    """
                    '''
            },
        )
        # A suppression spelled inside a string literal registers nothing:
        # no finding (stale-suppression RL000 would fire if it were parsed)
        # and nothing suppressed.
        assert report.findings == []
        assert report.suppressed == []


# --------------------------------------------------------------------------- #
# engine, CLI, JSON
# --------------------------------------------------------------------------- #
class TestEngineAndCli:
    def test_json_report_schema(self, tmp_path):
        write_project(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import time

                    def stamp():
                        return time.time()
                    """
            },
        )
        report = run_reprolint(["src"], root=tmp_path)
        payload = report.to_json()
        assert payload["version"] == REPORT_VERSION
        assert payload["files_scanned"] == ["src/pkg/mod.py"]
        assert set(payload["rules"]) == set(registered_rule_ids())
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["by_rule"] == {"RL001": 1}
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "path", "line", "col", "message", "symbol"}

    def test_cli_exit_codes_and_json_artifact(self, tmp_path, capsys):
        write_project(
            tmp_path,
            {
                "src/clean.py": "VALUE = 1\n",
                "src/dirty.py": """
                    import time

                    def stamp():
                        return time.time()
                    """,
            },
        )
        artifact = tmp_path / "out" / "reprolint.json"
        code = reprolint_main(
            ["src", "--root", str(tmp_path), "--json", str(artifact)]
        )
        assert code == 1
        payload = json.loads(artifact.read_text())
        assert payload["summary"]["findings"] == 1
        capsys.readouterr()

        code = reprolint_main(["src/clean.py", "--root", str(tmp_path)])
        assert code == 0
        capsys.readouterr()

        assert reprolint_main(["no/such/dir", "--root", str(tmp_path)]) == 2

    def test_cli_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in registered_rule_ids():
            assert rule_id in out

    def test_syntax_error_raises(self, tmp_path):
        write_project(tmp_path, {"src/broken.py": "def broken(:\n"})
        with pytest.raises(ReprolintError, match="syntax error"):
            run_reprolint(["src"], root=tmp_path)


# --------------------------------------------------------------------------- #
# the repo itself
# --------------------------------------------------------------------------- #
class TestRepoIsClean:
    def test_repo_has_zero_unsuppressed_findings(self):
        report = run_reprolint(["src", "tests", "examples"], root=REPO_ROOT)
        assert report.findings == [], "\n" + "\n".join(
            finding.format() for finding in report.findings
        )

    def test_every_repo_suppression_is_reasoned(self):
        report = run_reprolint(["src", "tests", "examples"], root=REPO_ROOT)
        for _, suppression in report.suppressed:
            assert suppression.reason, (
                f"{suppression.path}:{suppression.comment_line} has no reason"
            )

    def test_wall_clock_allowlist_is_exact(self, monkeypatch):
        """Emptying the allowlist must surface wall-clock findings in exactly
        the allowlisted files — no more (allowlist is not too small) and no
        less (no stale entries)."""
        from tools.reprolint.rules import rl001_determinism

        monkeypatch.setattr(rl001_determinism, "WALL_CLOCK_ALLOWLIST", {})
        report = run_reprolint(["src"], root=REPO_ROOT)
        wall_clock_paths = {
            finding.path
            for finding in report.findings
            if finding.rule == "RL001" and "wall-clock" in finding.message
        }
        assert wall_clock_paths == set(WALL_CLOCK_ALLOWLIST)
        # Nothing else may appear when only the allowlist changes.
        assert {finding.rule for finding in report.findings} <= {"RL001"}


# --------------------------------------------------------------------------- #
# RL006 shared-memory lifecycle
# --------------------------------------------------------------------------- #
class TestRL006ShmLifecycle:
    def test_create_without_unlink_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/shm.py": """
                    import itertools
                    import os
                    from multiprocessing import shared_memory

                    _COUNTER = itertools.count()

                    def publish() -> None:
                        name = f"reproscore_{os.getpid()}_{next(_COUNTER)}"
                        seg = shared_memory.SharedMemory(name=name, create=True, size=64)
                        seg.close()
                    """
            },
        )
        assert "RL006" in rules_of(report)
        assert "close()+unlink()" in report.findings[0].message

    def test_finally_release_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/shm.py": """
                    import itertools
                    import os
                    from multiprocessing import shared_memory

                    _COUNTER = itertools.count()

                    def publish(payload: bytes) -> None:
                        name = f"reproscore_{os.getpid()}_{next(_COUNTER)}"
                        seg = shared_memory.SharedMemory(name=name, create=True, size=64)
                        try:
                            seg.buf[: len(payload)] = payload
                        finally:
                            seg.close()
                            seg.unlink()
                    """
            },
        )
        assert report.findings == []

    def test_mutation_deleting_finally_unlink_fires(self, tmp_path):
        """The ISSUE's mutation check: drop the unlink from the finally and
        RL006 must fire — proof the exceptional-path analysis is live."""
        report = lint(
            tmp_path,
            {
                "src/pkg/shm.py": """
                    import itertools
                    import os
                    from multiprocessing import shared_memory

                    _COUNTER = itertools.count()

                    def publish(payload: bytes) -> None:
                        name = f"reproscore_{os.getpid()}_{next(_COUNTER)}"
                        seg = shared_memory.SharedMemory(name=name, create=True, size=64)
                        try:
                            seg.buf[: len(payload)] = payload
                        finally:
                            seg.close()
                    """
            },
        )
        assert rules_of(report) == ["RL006"]

    def test_escape_by_return_is_ownership_transfer(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/shm.py": """
                    import itertools
                    import os
                    from multiprocessing import shared_memory

                    _COUNTER = itertools.count()

                    def make_segment():
                        name = f"reproscore_{os.getpid()}_{next(_COUNTER)}"
                        segment = shared_memory.SharedMemory(name=name, create=True, size=64)
                        return segment
                    """
            },
        )
        assert report.findings == []

    def test_attach_side_unlink_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/shm.py": """
                    from multiprocessing import shared_memory

                    def read_segment(name: str) -> bytes:
                        seg = shared_memory.SharedMemory(name=name)
                        try:
                            return bytes(seg.buf[:4])
                        finally:
                            seg.close()
                            seg.unlink()
                    """
            },
        )
        assert "RL006" in rules_of(report)
        assert any("never unlink()" in f.message for f in report.findings)

    def test_attach_close_only_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/shm.py": """
                    from multiprocessing import shared_memory

                    def read_segment(name: str) -> bytes:
                        seg = shared_memory.SharedMemory(name=name)
                        try:
                            return bytes(seg.buf[:4])
                        finally:
                            seg.close()
                    """
            },
        )
        assert report.findings == []

    def test_fixed_literal_and_uuid_names_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/shm.py": """
                    import uuid
                    from multiprocessing import shared_memory

                    def fixed() -> None:
                        seg = shared_memory.SharedMemory(name="scores", create=True, size=8)
                        seg.close()
                        seg.unlink()

                    def randomised() -> None:
                        seg = shared_memory.SharedMemory(
                            name=f"seg_{uuid.uuid4()}", create=True, size=8
                        )
                        seg.close()
                        seg.unlink()

                    def unnamed() -> None:
                        seg = shared_memory.SharedMemory(create=True, size=8)
                        seg.close()
                        seg.unlink()
                    """
            },
        )
        assert rules_of(report).count("RL006") == 3
        messages = " ".join(f.message for f in report.findings)
        assert "fixed-literal" in messages
        assert "uuid" in messages


# --------------------------------------------------------------------------- #
# RL007 fork safety
# --------------------------------------------------------------------------- #
class TestRL007ForkSafety:
    def test_worker_mutating_module_global_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/pool.py": """
                    from concurrent.futures import ProcessPoolExecutor

                    RESULTS: list[int] = []

                    def worker(block: int) -> int:
                        RESULTS.append(block)
                        return block

                    def run(blocks: list[int]) -> list[int]:
                        with ProcessPoolExecutor(max_workers=2) as pool:
                            futures = [pool.submit(worker, b) for b in blocks]
                        return [f.result() for f in futures]
                    """
            },
        )
        assert "RL007" in rules_of(report)
        assert any("module-global" in f.message for f in report.findings)

    def test_lambda_submission_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/pool.py": """
                    from concurrent.futures import ProcessPoolExecutor

                    def run(items: list[int]) -> list[int]:
                        pool = ProcessPoolExecutor(max_workers=2)
                        try:
                            futures = [pool.submit(lambda item: item + 1, item) for item in items]
                            return [f.result() for f in futures]
                        finally:
                            pool.shutdown()
                    """
            },
        )
        assert "RL007" in rules_of(report)
        assert any("lambda" in f.message for f in report.findings)

    def test_wall_clock_reachable_from_worker_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/pool.py": """
                    import time
                    from concurrent.futures import ProcessPoolExecutor

                    def _stamp() -> float:
                        return time.time()

                    def worker(block: int) -> tuple[float, int]:
                        return (_stamp(), block)

                    def run(blocks: list[int]) -> list[tuple[float, int]]:
                        pool = ProcessPoolExecutor(max_workers=2)
                        try:
                            return [pool.submit(worker, b).result() for b in blocks]
                        finally:
                            pool.shutdown()
                    """
            },
        )
        rl007 = [f for f in report.findings if f.rule == "RL007"]
        assert any("wall clock" in f.message for f in rl007)

    def test_thread_constructed_before_pool_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/pool.py": """
                    import threading
                    from concurrent.futures import ProcessPoolExecutor

                    _LOCK = threading.Lock()

                    def make_pool() -> ProcessPoolExecutor:
                        return ProcessPoolExecutor(max_workers=2)
                    """
            },
        )
        rl007 = [f for f in report.findings if f.rule == "RL007"]
        assert any("before the process pool" in f.message for f in rl007)

    def test_clean_worker_module_passes(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/pool.py": """
                    import numpy as np
                    from concurrent.futures import ProcessPoolExecutor
                    from multiprocessing import shared_memory

                    def worker(
                        name: str,
                        shape: tuple[int, ...],
                        blocks: tuple[tuple[int, int], ...],
                    ) -> None:
                        seg = shared_memory.SharedMemory(name=name)
                        try:
                            scores = np.ndarray(shape, dtype=np.float64, buffer=seg.buf)
                            for start, stop in blocks:
                                scores[start:stop] = 1.0
                            del scores
                        finally:
                            seg.close()

                    def run(
                        name: str,
                        shape: tuple[int, ...],
                        runs: list[tuple[tuple[int, int], ...]],
                    ) -> None:
                        pool = ProcessPoolExecutor(max_workers=2)
                        try:
                            futures = [pool.submit(worker, name, shape, r) for r in runs]
                            for future in futures:
                                future.result()
                        finally:
                            pool.shutdown()
                    """
            },
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# RL008 disjoint writes
# --------------------------------------------------------------------------- #
_RL008_MODULE = """
    import numpy as np
    from concurrent.futures import ProcessPoolExecutor
    from multiprocessing import shared_memory

    def worker(
        name: str,
        shape: tuple[int, ...],
        blocks: tuple[tuple[int, int], ...],
    ) -> None:
        seg = shared_memory.SharedMemory(name=name)
        try:
            scores = np.ndarray(shape, dtype=np.float64, buffer=seg.buf)
            {write}
            del scores
        finally:
            seg.close()

    def run(
        name: str,
        shape: tuple[int, ...],
        runs: list[tuple[tuple[int, int], ...]],
    ) -> None:
        pool = ProcessPoolExecutor(max_workers=2)
        try:
            for future in [pool.submit(worker, name, shape, r) for r in runs]:
                future.result()
        finally:
            pool.shutdown()
"""


class TestRL008DisjointWrites:
    def _lint_with_write(self, tmp_path, write: str):
        return lint(tmp_path, {"src/pkg/pool.py": _RL008_MODULE.format(write=write)})

    def test_block_range_slice_clean(self, tmp_path):
        report = self._lint_with_write(
            tmp_path,
            "for start, stop in blocks:\n                scores[start:stop] = 1.0",
        )
        assert report.findings == []

    def test_mutation_whole_array_store_fires(self, tmp_path):
        """The ISSUE's mutation check: a whole-array store must be a finding."""
        report = self._lint_with_write(tmp_path, "scores[:] = 1.0")
        assert rules_of(report) == ["RL008"]

    def test_element_store_fires(self, tmp_path):
        report = self._lint_with_write(tmp_path, "scores[0] = 1.0")
        assert rules_of(report) == ["RL008"]

    def test_computed_slice_fires(self, tmp_path):
        report = self._lint_with_write(
            tmp_path,
            "for start, stop in blocks:\n                scores[start : stop + 1] = 1.0",
        )
        assert rules_of(report) == ["RL008"]

    def test_view_from_container_tracked(self, tmp_path):
        report = self._lint_with_write(
            tmp_path,
            "views = {}\n            views['scores'] = scores\n"
            "            out = views['scores']\n            out[:] = 1.0",
        )
        assert "RL008" in rules_of(report)


# --------------------------------------------------------------------------- #
# RL009 exception-safe release
# --------------------------------------------------------------------------- #
class TestRL009ExceptionSafety:
    def test_file_handle_leaked_on_raise_path_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/io_mod.py": """
                    def read_header(path: str) -> str:
                        handle = open(path)
                        data = handle.read(16)
                        handle.close()
                        return data
                    """
            },
        )
        assert rules_of(report) == ["RL009"]
        assert "exceptional path" in report.findings[0].message

    def test_with_block_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/io_mod.py": """
                    def read_header(path: str) -> str:
                        with open(path) as handle:
                            return handle.read(16)
                    """
            },
        )
        assert report.findings == []

    def test_pool_orphaned_on_raise_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/pool.py": """
                    from concurrent.futures import ProcessPoolExecutor

                    def job(block: int) -> int:
                        return block

                    def run(blocks: list[int]) -> list[int]:
                        pool = ProcessPoolExecutor(max_workers=2)
                        futures = [pool.submit(job, b) for b in blocks]
                        results = [f.result() for f in futures]
                        pool.shutdown()
                        return results
                    """
            },
        )
        assert "RL009" in rules_of(report)
        assert any("process/thread pool" in f.message for f in report.findings)

    def test_pool_handed_to_cache_is_ownership_transfer(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/pool.py": """
                    from concurrent.futures import ProcessPoolExecutor

                    _CACHE: dict[int, ProcessPoolExecutor] = {}

                    def executor(workers: int) -> ProcessPoolExecutor:
                        pool = _CACHE.get(workers)
                        if pool is None:
                            pool = ProcessPoolExecutor(max_workers=workers)
                            _CACHE[workers] = pool
                        return pool
                    """
            },
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# multi-rule suppressions (regression) and output formats
# --------------------------------------------------------------------------- #
class TestMultiRuleSuppression:
    def test_comma_separated_codes_all_honoured(self, tmp_path):
        """Regression: a single comment naming two rule families must silence
        *both* findings on its line (and neither may come back as stale)."""
        report = lint(
            tmp_path,
            {
                "src/pkg/pool.py": """
                    import time
                    from concurrent.futures import ProcessPoolExecutor

                    def worker(block: int) -> float:
                        return time.time() + block  # reprolint: disable=RL001,RL007 -- fixture: clock read on a worker line

                    def run(blocks: list[int]) -> list[float]:
                        pool = ProcessPoolExecutor(max_workers=2)
                        try:
                            return [pool.submit(worker, b).result() for b in blocks]
                        finally:
                            pool.shutdown()
                    """
            },
        )
        assert report.findings == []
        assert sorted(f.rule for f, _ in report.suppressed) == ["RL001", "RL007"]

    def test_duplicate_codes_deduped(self, tmp_path):
        from tools.reprolint.model import parse_suppressions

        suppressions = parse_suppressions(
            "src/pkg/mod.py",
            "x = 1  # reprolint: disable=RL001,RL001,RL004 -- why\n",
        )
        assert len(suppressions) == 1
        assert suppressions[0].rules == ("RL001", "RL004")


class TestOutputFormats:
    FIXTURE = {
        "src/pkg/mod.py": """
            import time

            def stamp() -> float:
                return time.time()
            """
    }

    def test_github_format_emits_error_commands(self, tmp_path, capsys):
        write_project(tmp_path, self.FIXTURE)
        code = reprolint_main(["--root", str(tmp_path), "--format", "github", "src"])
        out = capsys.readouterr().out
        assert code == 1
        assert "::error file=src/pkg/mod.py,line=" in out
        assert "title=reprolint RL001::" in out

    def test_sarif_report_written(self, tmp_path, capsys):
        write_project(tmp_path, self.FIXTURE)
        sarif_path = tmp_path / "out" / "reprolint.sarif"
        code = reprolint_main(["--root", str(tmp_path), "--sarif", str(sarif_path), "src"])
        capsys.readouterr()
        assert code == 1
        document = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert set(registered_rule_ids()) <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "RL001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/pkg/mod.py"
        assert location["region"]["startLine"] >= 1

    def test_sarif_clean_run_has_no_results(self, tmp_path, capsys):
        write_project(tmp_path, {"src/pkg/mod.py": "VALUE = 1\n"})
        sarif_path = tmp_path / "clean.sarif"
        code = reprolint_main(["--root", str(tmp_path), "--sarif", str(sarif_path), "src"])
        capsys.readouterr()
        assert code == 0
        document = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert document["runs"][0]["results"] == []
