"""Tests for the ``tools.reprolint`` static analyzer.

Every rule family gets at least one true-positive and one true-negative
fixture project (written into ``tmp_path`` with the same ``src`` /
``tests`` / ``examples`` layout the real repo uses), plus:

* suppression semantics (reasoned suppressions silence findings; reasonless,
  unknown-rule and stale suppressions are RL000);
* the RL004 call-graph walk across a helper function in another module;
* the JSON report schema;
* the meta-test: the repo itself is reprolint-clean;
* the wall-clock allowlist is *exact* — emptying it produces findings in
  precisely the allowlisted files and nowhere else.
"""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # `tools` lives at the repo root, not in src/
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import run_reprolint  # noqa: E402
from tools.reprolint.cli import main as reprolint_main  # noqa: E402
from tools.reprolint.engine import REPORT_VERSION, ReprolintError  # noqa: E402
from tools.reprolint.rules import registered_rule_ids  # noqa: E402
from tools.reprolint.rules.rl001_determinism import WALL_CLOCK_ALLOWLIST  # noqa: E402


def write_project(root: Path, files: dict[str, str]) -> list[str]:
    """Write ``files`` (relative path -> source) under ``root``; return dirs."""
    top_dirs: list[str] = []
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        top = relative.split("/", 1)[0]
        if top not in top_dirs:
            top_dirs.append(top)
    return top_dirs


def lint(root: Path, files: dict[str, str]):
    return run_reprolint(write_project(root, files), root=root)


def rules_of(report) -> list[str]:
    return [finding.rule for finding in report.findings]


# --------------------------------------------------------------------------- #
# RL001 determinism
# --------------------------------------------------------------------------- #
class TestRL001Determinism:
    def test_unseeded_rng_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import random
                    import numpy as np

                    def draw():
                        a = random.Random()
                        b = np.random.default_rng()
                        return a, b
                    """
            },
        )
        assert rules_of(report) == ["RL001", "RL001"]
        assert "unseeded" in report.findings[0].message

    def test_seeded_rng_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import random
                    import numpy as np

                    def draw(seed: int):
                        a = random.Random(seed)
                        b = np.random.default_rng(seed)
                        return a, b
                    """
            },
        )
        assert report.findings == []

    def test_module_level_random_flagged_through_aliases(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import numpy as xp
                    from random import randint

                    def draw():
                        return randint(1, 6) + xp.random.rand()
                    """
            },
        )
        assert sorted(rules_of(report)) == ["RL001", "RL001"]
        messages = " ".join(finding.message for finding in report.findings)
        assert "random.randint" in messages
        assert "numpy.random.rand" in messages

    def test_wall_clock_flagged_in_src_but_not_tests(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import time

                    def stamp():
                        return time.time()
                    """,
                "tests/test_mod.py": """
                    import time

                    def test_stamp():
                        assert time.time() > 0
                    """,
            },
        )
        assert rules_of(report) == ["RL001"]
        assert report.findings[0].path == "src/pkg/mod.py"

    def test_allowlisted_file_clean(self, tmp_path):
        allowlisted = next(iter(WALL_CLOCK_ALLOWLIST))
        report = lint(
            tmp_path,
            {
                allowlisted: """
                    __all__ = ["overhead"]

                    import time

                    def overhead():
                        return time.perf_counter()
                    """
            },
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# RL002 picklability
# --------------------------------------------------------------------------- #
class TestRL002Picklability:
    def test_unfrozen_spec_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/spec.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class TunerSpec:
                        name: str = "mab"
                    """
            },
        )
        assert rules_of(report) == ["RL002"]
        assert "frozen" in report.findings[0].message

    def test_fleet_spec_classes_covered(self, tmp_path):
        # TenantSpec and FleetConfig cross the same worker boundaries as the
        # run_competition specs, so RL002 must police their frozen-ness too.
        report = lint(
            tmp_path,
            {
                "src/pkg/fleet.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class TenantSpec:
                        tenant_id: str = "t0"

                    @dataclass
                    class FleetConfig:
                        batch_scoring: bool = True
                    """
            },
        )
        assert rules_of(report) == ["RL002", "RL002"]
        symbols = {finding.symbol for finding in report.findings}
        assert symbols == {"TenantSpec", "FleetConfig"}

    def test_scoring_config_covered(self, tmp_path):
        # ScoringConfig rides inside MabConfig / SimulationOptions /
        # FleetConfig across the same worker boundaries; frozen-ness is what
        # keeps the packed-scoring snapshot picklable.
        report = lint(
            tmp_path,
            {
                "src/pkg/scoring.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class ScoringConfig:
                        strategy: str = "monolithic"
                    """
            },
        )
        assert rules_of(report) == ["RL002"]
        assert report.findings[0].symbol == "ScoringConfig"

    def test_frozen_spec_with_factory_default_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/spec.py": """
                    from dataclasses import dataclass, field

                    @dataclass(frozen=True)
                    class TunerSpec:
                        name: str = "mab"
                        tags: list = field(default_factory=lambda: [])
                    """
            },
        )
        assert report.findings == []

    def test_callable_field_and_lambda_call_site_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/spec.py": """
                    from dataclasses import dataclass
                    from typing import Callable

                    @dataclass(frozen=True)
                    class DatabaseSpec:
                        builder: Callable[[], int] | None = None
                    """,
                "examples/run.py": """
                    from pkg.spec import DatabaseSpec

                    spec = DatabaseSpec(builder=lambda: 1)
                    """,
            },
        )
        assert sorted(rules_of(report)) == ["RL002", "RL002"]
        paths = {finding.path for finding in report.findings}
        assert paths == {"src/pkg/spec.py", "examples/run.py"}

    def test_non_spec_class_ignored(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/other.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class ScratchState:
                        counter: int = 0
                    """
            },
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# RL003 registry discipline
# --------------------------------------------------------------------------- #
class TestRL003RegistryDiscipline:
    def test_if_elif_dispatch_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/dispatch.py": """
                    def build(name: str):
                        if name == "mab":
                            return 1
                        elif name == "pdtool":
                            return 2
                        return 0
                    """
            },
        )
        assert rules_of(report) == ["RL003"]
        assert "mab" in report.findings[0].message

    def test_membership_tuple_dispatch_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/dispatch.py": """
                    def is_baseline(name: str) -> bool:
                        if name in ("noindex", "pdtool"):
                            return True
                        return False
                    """
            },
        )
        assert rules_of(report) == ["RL003"]

    def test_single_comparison_and_foreign_strings_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/dispatch.py": """
                    def check(name: str, regime: str) -> int:
                        if name == "mab":
                            return 1
                        if regime == "static":
                            return 2
                        elif regime == "shifting":
                            return 3
                        return 0
                    """
            },
        )
        assert report.findings == []

    def test_registry_module_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/repro/api/registry.py": """
                    __all__ = ["resolve"]

                    def resolve(name: str) -> int:
                        if name == "mab":
                            return 1
                        elif name == "pdtool":
                            return 2
                        raise KeyError(name)
                    """
            },
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# RL004 shard safety
# --------------------------------------------------------------------------- #
SHARD_FIXTURE_BANDIT = """
    class Scorer:
        def scores(self, contexts):
            return contexts

    class Bandit:
        def __init__(self):
            self._v = 0
            self._theta = None

        def scorer(self) -> "Scorer":
            return Scorer()

        def refresh(self):
            self._theta = 1

        def peek(self):
            return self._v
    """


class TestRL004ShardSafety:
    def test_mutation_through_helper_in_other_module_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/core/bandit.py": SHARD_FIXTURE_BANDIT,
                "src/core/tuner.py": """
                    from .bandit import Bandit


                    def _refresh_helper(bandit: Bandit):
                        bandit.refresh()


                    class MabTuner:
                        def __init__(self):
                            self.bandit = Bandit()

                        def _score_sharded(self, shards):
                            scorer = self.bandit.scorer()

                            def score_shard(shard):
                                _refresh_helper(self.bandit)
                                return scorer.scores(shard)

                            return [score_shard(shard) for shard in shards]
                    """,
            },
        )
        assert rules_of(report) == ["RL004"]
        finding = report.findings[0]
        assert finding.path == "src/core/bandit.py"
        assert "_theta" in finding.message
        assert "score_shard" in finding.message

    def test_snapshot_only_scoring_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/core/bandit.py": SHARD_FIXTURE_BANDIT,
                "src/core/tuner.py": """
                    from .bandit import Bandit


                    class MabTuner:
                        def __init__(self):
                            self.bandit = Bandit()

                        def _score_sharded(self, shards):
                            # Reading live state and refreshing OUTSIDE the
                            # shard closure is legal: only score_shard fans out.
                            self.bandit.refresh()
                            scorer = self.bandit.scorer()

                            def score_shard(shard):
                                return scorer.scores(shard)

                            return [score_shard(shard) for shard in shards]
                    """,
            },
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# RL005 public surface
# --------------------------------------------------------------------------- #
class TestRL005PublicSurface:
    def test_example_importing_internals_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "examples/demo.py": """
                    from repro.api import TuningSession
                    from repro.core.tuner import MabTuner
                    """
            },
        )
        assert rules_of(report) == ["RL005"]
        assert "repro.core.tuner" in report.findings[0].message

    def test_deprecated_import_flagged_in_src(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/repro/extra/glue.py": """
                    from repro.harness.interface import run_simulation
                    """
            },
        )
        assert rules_of(report) == ["RL005"]
        assert "deprecated" in report.findings[0].message

    def test_dunder_all_audit(self, tmp_path):
        report = lint(
            tmp_path,
            {
                # Missing __all__ entirely.
                "src/repro/api/one.py": """
                    def public_helper() -> int:
                        return 1
                    """,
                # __all__ exports a ghost and omits a public def.
                "src/repro/api/two.py": """
                    __all__ = ["ghost"]

                    def visible() -> int:
                        return 2
                    """,
            },
        )
        by_path = {}
        for finding in report.findings:
            by_path.setdefault(finding.path, []).append(finding.message)
        assert "no __all__" in by_path["src/repro/api/one.py"][0]
        two_messages = " ".join(by_path["src/repro/api/two.py"])
        assert "ghost" in two_messages
        assert "visible" in two_messages

    def test_consistent_module_clean(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/repro/api/three.py": """
                    __all__ = ["visible"]

                    def visible() -> int:
                        return 3

                    def _internal() -> int:
                        return 4
                    """
            },
        )
        assert report.findings == []

    def test_fleet_modules_are_audited(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/repro/fleet/roster.py": """
                    def roster() -> list:
                        return []
                    """
            },
        )
        assert rules_of(report) == ["RL005"]
        assert "no __all__" in report.findings[0].message

    def test_lazy_exports_via_module_getattr_accepted(self, tmp_path):
        # PEP 562 lazy re-export: names absent from the static bindings are
        # fine when a top-level __getattr__ exists and a lazy-export table
        # names them as string literals.
        report = lint(
            tmp_path,
            {
                "src/repro/api/lazy.py": """
                    __all__ = ["Eager", "Lazy"]

                    _LAZY_EXPORTS = frozenset({"Lazy"})


                    class Eager:
                        pass


                    def __getattr__(name: str) -> object:
                        raise AttributeError(name)
                    """
            },
        )
        assert report.findings == []

    def test_deprecated_scoring_kwargs_flagged(self, tmp_path):
        # The legacy shard_by / batch_scoring spellings on the config
        # constructors normalise into ScoringConfig; new code must not use
        # them outside the shim modules themselves.
        report = lint(
            tmp_path,
            {
                "src/repro/extra/wiring.py": """
                    from repro.api import SimulationOptions
                    from repro.core.config import MabConfig
                    from repro.fleet import FleetConfig

                    config = MabConfig(shard_by="table", shard_workers=2)
                    options = SimulationOptions(shard_by="hash")
                    fleet = FleetConfig(batch_scoring=False)
                    """
            },
        )
        assert rules_of(report) == ["RL005"] * 4
        messages = " ".join(finding.message for finding in report.findings)
        assert "scoring=ScoringConfig(...)" in messages
        assert "shard_by" in messages and "batch_scoring" in messages

    def test_scoring_kwargs_allowed_in_shims_tests_and_other_callees(self, tmp_path):
        report = lint(
            tmp_path,
            {
                # The shim module itself may spell the legacy knobs.
                "src/repro/core/config.py": """
                    def _rebuild(cls):
                        return cls(shard_by="table")


                    class MabConfig:
                        pass
                    """,
                # Tests exercise the deprecation path on purpose.
                "tests/test_legacy.py": """
                    from repro.core.config import MabConfig

                    config = MabConfig(shard_by="table")
                    """,
                # Same-named parameters on other callables are the live API.
                "src/repro/extra/partition.py": """
                    from repro.core.sharding import shard_arms

                    shards = shard_arms([], shard_by="table")
                    """,
            },
        )
        assert report.findings == []

    def test_lazy_export_still_flagged_without_module_getattr(self, tmp_path):
        # The same lazy table without a __getattr__ cannot actually resolve
        # the name, so the export-drift finding must survive.
        report = lint(
            tmp_path,
            {
                "src/repro/api/broken.py": """
                    __all__ = ["Lazy"]

                    _LAZY_EXPORTS = frozenset({"Lazy"})
                    """
            },
        )
        assert rules_of(report) == ["RL005"]
        assert "'Lazy'" in report.findings[0].message


# --------------------------------------------------------------------------- #
# RL000 suppressions
# --------------------------------------------------------------------------- #
class TestSuppressions:
    def test_reasoned_suppression_silences_finding(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import time

                    def stamp():
                        return time.time()  # reprolint: disable=RL001 -- demo clock, not on a decision path
                    """
            },
        )
        assert report.findings == []
        assert len(report.suppressed) == 1
        finding, suppression = report.suppressed[0]
        assert finding.rule == "RL001"
        assert suppression.reason is not None

    def test_standalone_suppression_applies_to_next_line(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import time

                    def stamp():
                        # reprolint: disable=RL001 -- demo clock, not on a decision path
                        return time.time()
                    """
            },
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_reasonless_suppression_is_rl000(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import time

                    def stamp():
                        return time.time()  # reprolint: disable=RL001
                    """
            },
        )
        assert rules_of(report) == ["RL000"]
        assert "reason" in report.findings[0].message
        # It still suppresses — the RL001 is in the suppressed list.
        assert [f.rule for f, _ in report.suppressed] == ["RL001"]

    def test_unknown_rule_and_stale_suppression_are_rl000(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    def fine() -> int:
                        x = 1  # reprolint: disable=RL999 -- no such rule
                        y = 2  # reprolint: disable=RL001 -- nothing here to suppress
                        return x + y
                    """
            },
        )
        messages = sorted(finding.message for finding in report.findings)
        assert rules_of(report) == ["RL000", "RL000"]
        assert any("unknown rule RL999" in message for message in messages)
        assert any("stale suppression" in message for message in messages)

    def test_suppression_inside_string_literal_inert(self, tmp_path):
        report = lint(
            tmp_path,
            {
                "src/pkg/mod.py": '''
                    DOC = """
                    # reprolint: disable=RL001 -- this is documentation, not a comment
                    """
                    '''
            },
        )
        # A suppression spelled inside a string literal registers nothing:
        # no finding (stale-suppression RL000 would fire if it were parsed)
        # and nothing suppressed.
        assert report.findings == []
        assert report.suppressed == []


# --------------------------------------------------------------------------- #
# engine, CLI, JSON
# --------------------------------------------------------------------------- #
class TestEngineAndCli:
    def test_json_report_schema(self, tmp_path):
        write_project(
            tmp_path,
            {
                "src/pkg/mod.py": """
                    import time

                    def stamp():
                        return time.time()
                    """
            },
        )
        report = run_reprolint(["src"], root=tmp_path)
        payload = report.to_json()
        assert payload["version"] == REPORT_VERSION
        assert payload["files_scanned"] == ["src/pkg/mod.py"]
        assert set(payload["rules"]) == set(registered_rule_ids())
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["by_rule"] == {"RL001": 1}
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "path", "line", "col", "message", "symbol"}

    def test_cli_exit_codes_and_json_artifact(self, tmp_path, capsys):
        write_project(
            tmp_path,
            {
                "src/clean.py": "VALUE = 1\n",
                "src/dirty.py": """
                    import time

                    def stamp():
                        return time.time()
                    """,
            },
        )
        artifact = tmp_path / "out" / "reprolint.json"
        code = reprolint_main(
            ["src", "--root", str(tmp_path), "--json", str(artifact)]
        )
        assert code == 1
        payload = json.loads(artifact.read_text())
        assert payload["summary"]["findings"] == 1
        capsys.readouterr()

        code = reprolint_main(["src/clean.py", "--root", str(tmp_path)])
        assert code == 0
        capsys.readouterr()

        assert reprolint_main(["no/such/dir", "--root", str(tmp_path)]) == 2

    def test_cli_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in registered_rule_ids():
            assert rule_id in out

    def test_syntax_error_raises(self, tmp_path):
        write_project(tmp_path, {"src/broken.py": "def broken(:\n"})
        with pytest.raises(ReprolintError, match="syntax error"):
            run_reprolint(["src"], root=tmp_path)


# --------------------------------------------------------------------------- #
# the repo itself
# --------------------------------------------------------------------------- #
class TestRepoIsClean:
    def test_repo_has_zero_unsuppressed_findings(self):
        report = run_reprolint(["src", "tests", "examples"], root=REPO_ROOT)
        assert report.findings == [], "\n" + "\n".join(
            finding.format() for finding in report.findings
        )

    def test_every_repo_suppression_is_reasoned(self):
        report = run_reprolint(["src", "tests", "examples"], root=REPO_ROOT)
        for _, suppression in report.suppressed:
            assert suppression.reason, (
                f"{suppression.path}:{suppression.comment_line} has no reason"
            )

    def test_wall_clock_allowlist_is_exact(self, monkeypatch):
        """Emptying the allowlist must surface wall-clock findings in exactly
        the allowlisted files — no more (allowlist is not too small) and no
        less (no stale entries)."""
        from tools.reprolint.rules import rl001_determinism

        monkeypatch.setattr(rl001_determinism, "WALL_CLOCK_ALLOWLIST", {})
        report = run_reprolint(["src"], root=REPO_ROOT)
        wall_clock_paths = {
            finding.path
            for finding in report.findings
            if finding.rule == "RL001" and "wall-clock" in finding.message
        }
        assert wall_clock_paths == set(WALL_CLOCK_ALLOWLIST)
        # Nothing else may appear when only the allowlist changes.
        assert {finding.rule for finding in report.findings} <= {"RL001"}
