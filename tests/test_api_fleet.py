"""Tests for ``repro.fleet``: the multi-tenant tuning fleet.

The central guarantee under test is *parity*: a fleet of N tenants produces
reports and converged configurations bit-identical to N standalone
:class:`~repro.api.TuningSession` runs — for every registered tuner, whether
scoring is batched or per-session, and whatever order observations are
submitted in.  On top of that: spec interning (100 identical tenants share
one statistics snapshot), the fleet error surface, and the bitwise
equivalence contract of the vectorized scoring entry point.
"""

from __future__ import annotations

import pickle
import random

import numpy as np
import pytest

from repro.api import (
    DatabaseSpec,
    DuplicateTenantError,
    FleetConfig,
    FleetSummary,
    TenantSpec,
    TuningFleet,
    TuningSession,
    UnknownTenantError,
    create_tuner,
)
from repro.core.linear_bandit import (
    C2UCB,
    LinearScorer,
    batch_upper_confidence_scores,
)
from repro.workloads import StaticWorkload, get_benchmark

ALL_TUNERS = ("NoIndex", "MAB", "PDTool", "DDQN", "DDQN_SC")

#: RoundReport fields that must match bit for bit between a fleet tenant and
#: a standalone session.  Wall-clock fields (and ``recommendation_seconds``,
#: itself a measured wall time) are honest timings, not model outputs.
DETERMINISTIC_FIELDS = (
    "round_number",
    "creation_seconds",
    "execution_seconds",
    "n_queries",
    "indexes_created",
    "indexes_dropped",
    "configuration_size",
    "configuration_bytes",
    "is_shift_round",
)


def tiny_spec(seed: int = 4) -> DatabaseSpec:
    return DatabaseSpec("ssb", scale_factor=0.1, sample_rows=200, seed=seed)


@pytest.fixture(scope="module")
def ssb_rounds():
    benchmark = get_benchmark("ssb")
    database = tiny_spec().create()
    return StaticWorkload(database, benchmark.templates[:4], n_rounds=4, seed=1).materialise()


def deterministic_rows(report):
    return [
        [getattr(round_report, field) for field in DETERMINISTIC_FIELDS]
        for round_report in report.rounds
    ]


def configuration_of(session: TuningSession) -> list[str]:
    return sorted(index.index_id for index in session.database.materialised_indexes)


def standalone_reference(tuner_name: str, rounds) -> TuningSession:
    """The parity oracle: one tenant's spec run in its own session."""
    database = tiny_spec().create()
    session = TuningSession(database, create_tuner(tuner_name, database))
    for workload_round in rounds:
        session.step(workload_round.queries)
    return session


# --------------------------------------------------------------------- #
# specs
# --------------------------------------------------------------------- #
class TestSpecs:
    def test_tenant_spec_and_fleet_config_pickle_and_freeze(self):
        spec = TenantSpec("t1", tiny_spec(), tuner="MAB")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        with pytest.raises(AttributeError):
            spec.tenant_id = "t2"
        config = FleetConfig(batch_scoring=False)
        assert pickle.loads(pickle.dumps(config)) == config

    def test_database_spec_is_hashable_even_with_placement_dict(self):
        a = DatabaseSpec("tpch", table_backends={"lineitem": "inmemory"})
        b = DatabaseSpec("tpch", table_backends={"lineitem": "inmemory"})
        assert a == b and hash(a) == hash(b)
        assert a.intern_key() == b.intern_key()
        assert len({a, b}) == 1

    def test_intern_key_separates_every_field(self):
        base = tiny_spec()
        for changed in (
            tiny_spec(seed=5),
            DatabaseSpec("ssb", scale_factor=0.2, sample_rows=200, seed=4),
            DatabaseSpec("ssb", scale_factor=0.1, sample_rows=300, seed=4),
            DatabaseSpec("ssb", scale_factor=0.1, sample_rows=200, seed=4, backend="ssd"),
        ):
            assert changed.intern_key() != base.intern_key()


# --------------------------------------------------------------------- #
# interning
# --------------------------------------------------------------------- #
class TestInterning:
    def test_hundred_identical_tenants_share_one_statistics_snapshot(self):
        fleet = TuningFleet(
            TenantSpec(f"t{i:03d}", tiny_spec(), tuner="NoIndex") for i in range(100)
        )
        assert len(fleet) == 100
        assert fleet.interner.misses == 1
        assert fleet.interner.hits == 99
        assert len(fleet.interner) == 1
        statistics = {
            id(fleet.session(tid).database.statistics) for tid in fleet.tenant_ids
        }
        assert len(statistics) == 1  # one shared snapshot, not 100 rebuilds

    def test_distinct_specs_materialise_separately(self):
        fleet = TuningFleet(
            [
                TenantSpec("a", tiny_spec(seed=4), tuner="NoIndex"),
                TenantSpec("b", tiny_spec(seed=5), tuner="NoIndex"),
                TenantSpec("c", tiny_spec(seed=4), tuner="NoIndex"),
            ]
        )
        assert fleet.interner.misses == 2
        assert fleet.interner.hits == 1

    def test_interning_can_be_disabled(self):
        fleet = TuningFleet(
            [
                TenantSpec("a", tiny_spec(), tuner="NoIndex"),
                TenantSpec("b", tiny_spec(), tuner="NoIndex"),
            ],
            FleetConfig(intern_databases=False),
        )
        assert fleet.interner.misses == 0 and fleet.interner.hits == 0
        assert id(fleet.session("a").database.statistics) != id(
            fleet.session("b").database.statistics
        )

    def test_tenant_views_keep_index_catalogs_private(self, ssb_rounds):
        fleet = TuningFleet(
            [
                TenantSpec("tuned", tiny_spec(), tuner="MAB"),
                TenantSpec("untouched", tiny_spec(), tuner="NoIndex"),
            ]
        )
        for workload_round in ssb_rounds:
            fleet.step({tid: workload_round.queries for tid in fleet.tenant_ids})
        assert configuration_of(fleet.session("tuned"))
        assert configuration_of(fleet.session("untouched")) == []


# --------------------------------------------------------------------- #
# error surface
# --------------------------------------------------------------------- #
class TestErrors:
    def test_unknown_tenant_everywhere(self):
        fleet = TuningFleet([TenantSpec("known", tiny_spec(), tuner="NoIndex")])
        for call in (
            lambda: fleet.session("ghost"),
            lambda: fleet.submit("ghost", []),
            lambda: fleet.step({"ghost": []}),
        ):
            with pytest.raises(UnknownTenantError, match="ghost.*known"):
                call()

    def test_unknown_tenant_error_is_key_and_value_error(self):
        assert issubclass(UnknownTenantError, KeyError)
        assert issubclass(UnknownTenantError, ValueError)
        error = UnknownTenantError("x", ["b", "a"])
        assert str(error) == "unknown tenant 'x'; registered tenants: a, b"
        assert UnknownTenantError("x", []).args[0].endswith("none registered")

    def test_duplicate_tenant_rejected(self):
        fleet = TuningFleet([TenantSpec("dup", tiny_spec(), tuner="NoIndex")])
        with pytest.raises(DuplicateTenantError, match="dup.*already registered"):
            fleet.add_tenant(TenantSpec("dup", tiny_spec(), tuner="MAB"))
        assert issubclass(DuplicateTenantError, ValueError)
        assert len(fleet) == 1  # the existing session survived


# --------------------------------------------------------------------- #
# parity: fleet-of-N == N independent sessions, bit for bit
# --------------------------------------------------------------------- #
class TestFleetParity:
    N_TENANTS = 3

    def _submit_shuffled(self, fleet, rounds, seed: int) -> None:
        """Stream every (tenant, round) submission in a shuffled interleaving
        (per-tenant round order preserved, cross-tenant order randomised)."""
        pending = {tid: list(rounds) for tid in fleet.tenant_ids}
        rng = random.Random(seed)
        while any(pending.values()):
            tenant_id = rng.choice([t for t in fleet.tenant_ids if pending[t]])
            fleet.submit(tenant_id, pending[tenant_id].pop(0).queries)

    @pytest.mark.parametrize("tuner_name", ALL_TUNERS)
    def test_fleet_matches_independent_sessions_out_of_order(
        self, tuner_name, ssb_rounds
    ):
        reference = standalone_reference(tuner_name, ssb_rounds)
        fleet = TuningFleet(
            TenantSpec(f"t{i}", tiny_spec(), tuner=tuner_name)
            for i in range(self.N_TENANTS)
        )
        self._submit_shuffled(fleet, ssb_rounds, seed=20210409)
        drained = fleet.drain()

        assert list(drained) == fleet.tenant_ids
        for tenant_id in fleet.tenant_ids:
            session = fleet.session(tenant_id)
            assert deterministic_rows(session.report) == deterministic_rows(
                reference.report
            )
            assert configuration_of(session) == configuration_of(reference)
            assert [r.round_number for r in drained[tenant_id]] == [
                r.round_number for r in session.report.rounds
            ]

    @pytest.mark.parametrize("tuner_name", ALL_TUNERS)
    def test_submission_order_is_unobservable(self, tuner_name, ssb_rounds):
        outcomes = []
        for seed in (1, 2):
            fleet = TuningFleet(
                TenantSpec(f"t{i}", tiny_spec(), tuner=tuner_name)
                for i in range(self.N_TENANTS)
            )
            self._submit_shuffled(fleet, ssb_rounds, seed=seed)
            fleet.drain()
            outcomes.append(
                {
                    tid: (
                        deterministic_rows(fleet.session(tid).report),
                        configuration_of(fleet.session(tid)),
                    )
                    for tid in fleet.tenant_ids
                }
            )
        assert outcomes[0] == outcomes[1]

    def test_batched_scoring_matches_per_session_scoring(self, ssb_rounds):
        """The fleet-level equivalence: switching the vectorized pass off must
        not change a single bit of any tenant's outcome."""
        outcomes = []
        for batch_scoring in (True, False):
            fleet = TuningFleet(
                (TenantSpec(f"t{i}", tiny_spec(), tuner="MAB") for i in range(2)),
                FleetConfig(batch_scoring=batch_scoring),
            )
            for workload_round in ssb_rounds:
                fleet.step({tid: workload_round.queries for tid in fleet.tenant_ids})
            outcomes.append(
                {
                    tid: (
                        deterministic_rows(fleet.session(tid).report),
                        configuration_of(fleet.session(tid)),
                    )
                    for tid in fleet.tenant_ids
                }
            )
        assert outcomes[0] == outcomes[1]

    def test_mixed_tuner_fleet(self, ssb_rounds):
        fleet = TuningFleet(
            [
                TenantSpec("mab", tiny_spec(), tuner="MAB"),
                TenantSpec("ddqn", tiny_spec(), tuner="DDQN"),
                TenantSpec("baseline", tiny_spec(), tuner="NoIndex"),
            ]
        )
        for workload_round in ssb_rounds:
            fleet.step({tid: workload_round.queries for tid in fleet.tenant_ids})
        for tenant_id, tuner_name in (
            ("mab", "MAB"),
            ("ddqn", "DDQN"),
            ("baseline", "NoIndex"),
        ):
            reference = standalone_reference(tuner_name, ssb_rounds)
            session = fleet.session(tenant_id)
            assert deterministic_rows(session.report) == deterministic_rows(
                reference.report
            )
            assert configuration_of(session) == configuration_of(reference)


# --------------------------------------------------------------------- #
# the vectorized scoring contract (property test)
# --------------------------------------------------------------------- #
class TestBatchedScoringContract:
    def test_batch_scores_bit_identical_to_per_scorer_passes(self):
        """Property: for random snapshots, pools and alphas — including
        ragged pool sizes that split the stack into shape groups — the
        batched pass returns np.array_equal (bitwise) results."""
        rng = np.random.default_rng(20210409)
        for _ in range(20):
            tenants = int(rng.integers(1, 9))
            dimension = int(rng.choice([3, 5, 8]))
            scorers, blocks, alphas = [], [], []
            for _ in range(tenants):
                theta = rng.normal(size=dimension)
                basis = rng.normal(size=(dimension, dimension))
                v_inverse = basis @ basis.T + np.eye(dimension)
                scorers.append(LinearScorer(theta, v_inverse))
                pool_size = int(rng.choice([1, 4, 7]))
                blocks.append(rng.normal(size=(pool_size, dimension)))
                alphas.append(float(rng.uniform(0.0, 3.0)))
            batched = batch_upper_confidence_scores(scorers, blocks, alphas)
            for scorer, block, alpha, scores in zip(scorers, blocks, alphas, batched):
                expected = scorer.upper_confidence_scores(block, alpha)
                assert np.array_equal(scores, expected)

    def test_batch_matches_live_learner_scoring(self):
        rng = np.random.default_rng(3)
        learners = []
        for seed in (5, 6, 7):
            learner = C2UCB(dimension=4, seed=seed)
            for _ in range(3):
                contexts = rng.normal(size=(5, 4))
                learner.update(contexts, rng.uniform(size=5))
            learners.append(learner)
        blocks = [rng.normal(size=(6, 4)) for _ in learners]
        alphas = [0.5, 1.0, 2.0]
        batched = batch_upper_confidence_scores(
            [learner.scorer() for learner in learners], blocks, alphas
        )
        for learner, block, alpha, scores in zip(learners, blocks, alphas, batched):
            assert np.array_equal(scores, learner.upper_confidence_scores(block, alpha))

    def test_validation_errors(self):
        scorer = LinearScorer(np.zeros(3), np.eye(3))
        block = np.zeros((2, 3))
        with pytest.raises(ValueError, match="must align"):
            batch_upper_confidence_scores([scorer], [block, block], [1.0])
        with pytest.raises(ValueError, match="non-negative"):
            batch_upper_confidence_scores([scorer], [block], [-0.1])
        with pytest.raises(ValueError, match="shape"):
            batch_upper_confidence_scores([scorer], [np.zeros((2, 4))], [1.0])


# --------------------------------------------------------------------- #
# the queue API and reporting
# --------------------------------------------------------------------- #
class TestSubmitDrain:
    def test_uneven_queues_drain_completely(self, ssb_rounds):
        fleet = TuningFleet(
            [
                TenantSpec("busy", tiny_spec(), tuner="MAB"),
                TenantSpec("idle", tiny_spec(), tuner="MAB"),
            ]
        )
        for workload_round in ssb_rounds[:3]:
            fleet.submit("busy", workload_round.queries)
        fleet.submit("idle", ssb_rounds[0].queries)
        assert fleet.pending_rounds == 4
        drained = fleet.drain()
        assert fleet.pending_rounds == 0
        assert [len(drained["busy"]), len(drained["idle"])] == [3, 1]
        # the lone-tenant waves replay exactly like standalone stepping
        reference = standalone_reference("MAB", ssb_rounds[:3])
        assert deterministic_rows(fleet.session("busy").report) == deterministic_rows(
            reference.report
        )

    def test_drain_without_submissions_is_empty(self):
        fleet = TuningFleet([TenantSpec("t", tiny_spec(), tuner="NoIndex")])
        assert fleet.drain() == {}

    def test_summary_aggregates_reports(self, ssb_rounds):
        fleet = TuningFleet(
            TenantSpec(f"t{i}", tiny_spec(), tuner="MAB") for i in range(2)
        )
        for workload_round in ssb_rounds[:2]:
            fleet.step({tid: workload_round.queries for tid in fleet.tenant_ids})
        summary = fleet.summary()
        assert isinstance(summary, FleetSummary)
        assert summary.n_tenants == 2
        assert summary.n_rounds == 4
        assert summary.model_seconds == pytest.approx(
            sum(report.total_seconds for report in fleet.reports.values())
        )
        assert summary.wall_seconds > 0
        assert summary.rounds_per_second > 0
        assert FleetSummary.from_reports({}).rounds_per_second == 0.0

    def test_adopted_recommendations_respect_the_phase_machine(self, ssb_rounds):
        fleet = TuningFleet([TenantSpec("t", tiny_spec(), tuner="MAB")])
        session = fleet.session("t")
        session.recommend()
        # the session is mid-round; a fleet scoring pass must not barge in
        with pytest.raises(RuntimeError, match="expected execute"):
            fleet.step({"t": ssb_rounds[0].queries})
        session.execute(ssb_rounds[0].queries)
        session.observe()
        fleet.step({"t": ssb_rounds[1].queries})  # clean rounds still work
        assert session.report.n_rounds == 2


# --------------------------------------------------------------------- #
# mixed-stressor rosters: parity under adversarial workloads
# --------------------------------------------------------------------- #
class TestFleetUnderStress:
    """Tenants running *different* adversarial stressors concurrently must
    stay bit-for-bit with their standalone sessions — including the rounds'
    environment events (tier migrations, table growth), the offline-tool
    training workloads, and shift flags, all carried through the queue under
    shuffled submission arrival."""

    STRESS_ROSTER = (
        ("t-churn", "PDTool", "churn"),
        ("t-flash", "DDQN", "flash_traffic"),
        ("t-growth", "MAB", "schema_growth"),
        ("t-noop", "NoIndex", "tier_migration"),
        ("t-season", "DDQN_SC", "seasonal"),
        ("t-tier", "MAB", "tier_migration"),
    )
    N_STRESS_ROUNDS = 5

    @pytest.fixture(scope="class")
    def stress_rounds(self):
        from repro.workloads import get_stressor

        benchmark = get_benchmark("ssb")
        database = tiny_spec().create()
        return {
            stressor: get_stressor(stressor)(
                database,
                benchmark.templates[:4],
                n_rounds=self.N_STRESS_ROUNDS,
                seed=6,
            ).materialise()
            for _tid, _tuner, stressor in self.STRESS_ROSTER
        }

    @staticmethod
    def stress_reference(tuner_name: str, rounds) -> TuningSession:
        """The parity oracle: the tenant's stressor run in its own session."""
        database = tiny_spec().create()
        session = TuningSession(database, create_tuner(tuner_name, database))
        for workload_round in rounds:
            session.step_workload_round(workload_round)
        return session

    def _submit_shuffled_rounds(self, fleet, rounds_by_tenant, seed: int) -> None:
        pending = {tid: list(rounds) for tid, rounds in rounds_by_tenant.items()}
        rng = random.Random(seed)
        while any(pending.values()):
            tenant_id = rng.choice(sorted(t for t in pending if pending[t]))
            fleet.submit_workload_round(tenant_id, pending[tenant_id].pop(0))

    def test_mixed_stressor_roster_matches_standalone_sessions(self, stress_rounds):
        references = {
            tid: self.stress_reference(tuner, stress_rounds[stressor])
            for tid, tuner, stressor in self.STRESS_ROSTER
        }
        fleet = TuningFleet(
            TenantSpec(tid, tiny_spec(), tuner=tuner)
            for tid, tuner, _stressor in self.STRESS_ROSTER
        )
        self._submit_shuffled_rounds(
            fleet,
            {tid: stress_rounds[stressor] for tid, _tuner, stressor in self.STRESS_ROSTER},
            seed=20210409,
        )
        drained = fleet.drain()

        assert list(drained) == fleet.tenant_ids
        for tid, _tuner, _stressor in self.STRESS_ROSTER:
            session = fleet.session(tid)
            assert deterministic_rows(session.report) == deterministic_rows(
                references[tid].report
            ), f"fleet tenant {tid} diverged from its standalone session"
            assert configuration_of(session) == configuration_of(references[tid])

    def test_stress_submission_order_is_unobservable(self, stress_rounds):
        outcomes = []
        for seed in (1, 2):
            fleet = TuningFleet(
                TenantSpec(tid, tiny_spec(), tuner=tuner)
                for tid, tuner, _stressor in self.STRESS_ROSTER
            )
            self._submit_shuffled_rounds(
                fleet,
                {
                    tid: stress_rounds[stressor]
                    for tid, _tuner, stressor in self.STRESS_ROSTER
                },
                seed=seed,
            )
            fleet.drain()
            outcomes.append(
                {
                    tid: (
                        deterministic_rows(fleet.session(tid).report),
                        configuration_of(fleet.session(tid)),
                    )
                    for tid in fleet.tenant_ids
                }
            )
        assert outcomes[0] == outcomes[1]

    def test_interned_tenants_stay_isolated_under_growth_events(self, stress_rounds):
        """Growth events on one tenant's view must not leak into siblings
        sharing the interned statistics snapshot."""
        fleet = TuningFleet(
            [
                TenantSpec("grower", tiny_spec(), tuner="NoIndex"),
                TenantSpec("bystander", tiny_spec(), tuner="NoIndex"),
            ]
        )
        grower_db = fleet.session("grower").database
        bystander_db = fleet.session("bystander").database

        grown_tables = []
        before = {}
        for workload_round in stress_rounds["schema_growth"]:
            for event in workload_round.events:
                grown_tables.append(event.table)
                before.setdefault(event.table, grower_db.table_data(event.table).full_row_count)
            fleet.submit_workload_round("grower", workload_round)
            fleet.submit("bystander", workload_round.queries)
        fleet.drain()

        assert grown_tables, "the schema-growth sequence scheduled no events"
        for table in grown_tables:
            assert grower_db.table_data(table).full_row_count > before[table]
            assert bystander_db.table_data(table).full_row_count == before[table]
