"""Tests for workload-driven arm generation and context engineering."""

import numpy as np
import pytest

from repro.core import Arm, ArmGenerator, ContextBuilder, MabConfig
from repro.engine import IndexDefinition
from tests.conftest import make_join_query, make_sales_query


class TestArmGeneration:
    def test_arms_only_for_tables_with_predicates(self):
        generator = ArmGenerator(MabConfig())
        arms = generator.arms_for_query(make_sales_query())
        assert arms
        assert all(arm.table == "sales" for arm in arms)

    def test_single_and_multi_column_permutations(self):
        generator = ArmGenerator(MabConfig())
        arms = generator.generate([make_sales_query()])
        key_sets = {arm.index.key_columns for arm in arms.values()}
        assert ("day",) in key_sets
        assert ("channel",) in key_sets
        assert ("day", "channel") in key_sets
        assert ("channel", "day") in key_sets

    def test_covering_variants_included(self):
        generator = ArmGenerator(MabConfig())
        arms = generator.generate([make_sales_query()])
        covering = [arm for arm in arms.values() if arm.index.include_columns]
        assert covering
        assert any(arm.covering_for_queries for arm in covering)

    def test_covering_disabled(self):
        generator = ArmGenerator(MabConfig(include_covering_arms=False))
        arms = generator.generate([make_sales_query()])
        assert all(not arm.index.include_columns for arm in arms.values())

    def test_join_columns_produce_arms(self):
        generator = ArmGenerator(MabConfig())
        arms = generator.generate([make_join_query()])
        sales_keys = {arm.index.key_columns for arm in arms.values() if arm.table == "sales"}
        assert any("customer_id" in key for key in sales_keys)

    def test_width_cap_respected(self):
        generator = ArmGenerator(MabConfig(max_index_width=1))
        arms = generator.generate([make_sales_query()])
        assert all(len(arm.index.key_columns) == 1 for arm in arms.values())

    def test_per_query_table_budget_respected(self):
        config = MabConfig(max_arms_per_query_table=5)
        generator = ArmGenerator(config)
        arms = generator.arms_for_query(make_sales_query())
        assert len(arms) <= 5

    def test_merge_across_queries_unions_templates(self):
        generator = ArmGenerator(MabConfig())
        first = make_sales_query("a#0", "template_a")
        second = make_sales_query("b#0", "template_b")
        arms = generator.generate([first, second])
        single_day = arms["ix_sales_day"]
        assert single_day.source_templates == {"template_a", "template_b"}

    def test_arm_counts_scale_with_benchmark(self, tpch_benchmark, tpch_small_database):
        """A full TPC-H round generates a rich (hundreds) but bounded arm space."""
        rng = np.random.default_rng(0)
        queries = [template.instantiate(tpch_small_database, rng) for template in tpch_benchmark.templates]
        arms = ArmGenerator(MabConfig()).generate(queries)
        assert 100 < len(arms) < 3000


class TestContextBuilder:
    @pytest.fixture()
    def builder(self, tiny_schema):
        return ContextBuilder(tiny_schema)

    def test_dimension_is_columns_plus_derived(self, builder, tiny_schema):
        n_columns = sum(len(table.columns) for table in tiny_schema.tables)
        assert builder.dimension == n_columns + 3
        assert builder.column_feature_count == n_columns

    def test_prefix_encoding_values(self, builder, tiny_database_readonly):
        query = make_sales_query()
        arm = Arm(index=IndexDefinition("sales", ("day", "channel")), source_templates={"t"})
        context = builder.build(arm, [query], tiny_database_readonly)
        day_slot = builder.column_position("sales", "day")
        channel_slot = builder.column_position("sales", "channel")
        assert context[day_slot] == pytest.approx(1.0)
        assert context[channel_slot] == pytest.approx(0.1)

    def test_payload_only_column_is_zero(self, builder, tiny_database_readonly):
        query = make_sales_query()
        arm = Arm(index=IndexDefinition("sales", ("day", "amount")), source_templates={"t"})
        context = builder.build(arm, [query], tiny_database_readonly)
        amount_slot = builder.column_position("sales", "amount")
        assert context[amount_slot] == 0.0  # amount is only a payload column

    def test_non_workload_column_is_zero(self, builder, tiny_database_readonly):
        query = make_sales_query()
        arm = Arm(index=IndexDefinition("sales", ("product_id",)), source_templates={"t"})
        context = builder.build(arm, [query], tiny_database_readonly)
        slot = builder.column_position("sales", "product_id")
        assert context[slot] == 0.0

    def test_size_feature_zero_when_materialised(self, builder, tiny_database):
        query = make_sales_query()
        index = IndexDefinition("sales", ("day",))
        arm = Arm(index=index, source_templates={"t"})
        before = builder.build(arm, [query], tiny_database)
        assert before[builder.size_feature_index] > 0
        tiny_database.create_index(index)
        after = builder.build(arm, [query], tiny_database)
        assert after[builder.size_feature_index] == 0.0

    def test_covering_flag(self, builder, tiny_database_readonly):
        query = make_sales_query()
        covering_arm = Arm(
            index=IndexDefinition("sales", ("day", "channel"), ("amount",)),
            source_templates={"t"},
            covering_for_queries={query.query_id},
        )
        context = builder.build(covering_arm, [query], tiny_database_readonly)
        assert context[builder.covering_feature_index] == 1.0

    def test_usage_feature_increases(self, builder, tiny_database_readonly):
        query = make_sales_query()
        arm = Arm(index=IndexDefinition("sales", ("day",)), source_templates={"t"})
        cold = builder.build(arm, [query], tiny_database_readonly)
        arm.usage_rounds = 5
        warm = builder.build(arm, [query], tiny_database_readonly)
        assert warm[builder.usage_feature_index] > cold[builder.usage_feature_index]

    def test_build_matrix_shape(self, builder, tiny_database_readonly):
        query = make_sales_query()
        arms = list(ArmGenerator(MabConfig()).generate([query]).values())
        matrix = builder.build_matrix(arms, [query], tiny_database_readonly)
        assert matrix.shape == (len(arms), builder.dimension)

    def test_build_matrix_empty(self, builder, tiny_database_readonly):
        matrix = builder.build_matrix([], [], tiny_database_readonly)
        assert matrix.shape == (0, builder.dimension)

    def test_creation_context_only_size(self, builder, tiny_database_readonly):
        arm = Arm(index=IndexDefinition("sales", ("day",)), source_templates={"t"})
        context = builder.creation_context(arm, tiny_database_readonly)
        assert context[builder.size_feature_index] > 0
        context[builder.size_feature_index] = 0.0
        assert np.allclose(context, 0.0)
