"""End-to-end integration tests across engine, optimiser, tuners and harness."""

import pytest

from repro import quickstart
from repro.harness import ExperimentSettings, run_workload_experiment, speedup_percentage


class TestQuickstart:
    def test_quickstart_runs_all_three_tuners(self):
        reports = quickstart(benchmark_name="ssb", rounds=4)
        assert set(reports) == {"NoIndex", "PDTool", "MAB"}
        for report in reports.values():
            assert report.n_rounds == 4
            assert report.total_seconds > 0


class TestPaperShapeOnSmallSetups:
    """Cheap sanity checks of the qualitative results the paper reports.

    These use tiny samples and few rounds, so they assert *direction*
    (who improves over NoIndex, that the bandit learns) rather than the
    paper's exact percentages; the full comparisons live in benchmarks/.
    """

    @pytest.fixture(scope="class")
    def static_reports(self):
        settings = ExperimentSettings.quick().with_overrides(
            sample_rows=800, static_rounds=10
        )
        return run_workload_experiment("ssb", "static", ("NoIndex", "PDTool", "MAB"), settings)

    def test_both_tuners_beat_noindex_on_ssb(self, static_reports):
        noindex = static_reports["NoIndex"].total_seconds
        assert static_reports["PDTool"].total_seconds < noindex
        assert static_reports["MAB"].total_seconds < noindex

    def test_mab_converges_below_its_first_round(self, static_reports):
        rounds = static_reports["MAB"].rounds
        assert rounds[-1].execution_seconds < rounds[0].execution_seconds

    def test_mab_recommendation_time_is_negligible(self, static_reports):
        mab = static_reports["MAB"]
        assert mab.total_recommendation_seconds < 0.05 * mab.total_seconds

    def test_pdtool_pays_recommendation_time(self, static_reports):
        assert static_reports["PDTool"].total_recommendation_seconds > 0

    def test_total_is_sum_of_components(self, static_reports):
        for report in static_reports.values():
            assert report.total_seconds == pytest.approx(
                report.total_recommendation_seconds
                + report.total_creation_seconds
                + report.total_execution_seconds
            )

    def test_speedup_metric_consistency(self, static_reports):
        speedup = speedup_percentage(
            static_reports["NoIndex"].total_seconds, static_reports["MAB"].total_seconds
        )
        assert speedup > 0


class TestDynamicRandomSmall:
    def test_mab_handles_adhoc_workloads(self):
        settings = ExperimentSettings.quick().with_overrides(
            sample_rows=600, random_rounds=6
        )
        reports = run_workload_experiment("ssb", "random", ("NoIndex", "MAB"), settings)
        assert reports["MAB"].total_execution_seconds <= reports["NoIndex"].total_execution_seconds * 1.05
        assert reports["MAB"].n_rounds == 6
