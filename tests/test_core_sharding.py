"""Sharded arm-pool scoring: partitioning, merge semantics and parity.

The load-bearing guarantee is *selection parity*: at matched seeds a sharded
scoring pass must recommend the same configuration per round as the
monolithic pass, because sharding partitions scoring only — the C²UCB state
(theta, V⁻¹ and its Sherman–Morrison maintenance) stays global, the tie-break
jitter is drawn once for the whole pool, and the per-shard top-k cut always
keeps every arm the greedy oracle could select (the per-group Pareto
frontiers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Arm,
    MabConfig,
    MabTuner,
    ScoredArm,
    merge_shard_candidates,
    shard_arms,
    shard_key_for,
)
from repro.engine import IndexDefinition
from repro.api import SimulationOptions, TuningSession, create_tuner
from repro.workloads import StaticWorkload, get_benchmark


def make_arm(table: str, columns: tuple[str, ...], templates: set[str] | None = None) -> Arm:
    arm = Arm(index=IndexDefinition(table, columns))
    if templates:
        arm.source_templates |= templates
    return arm


def make_scored(
    table: str,
    columns: tuple[str, ...],
    score: float,
    size: int,
    position: int,
    templates: set[str] | None = None,
) -> ScoredArm:
    return ScoredArm(
        arm=make_arm(table, columns, templates),
        score=score,
        size_bytes=size,
        position=position,
    )


# --------------------------------------------------------------------- #
# partitioning
# --------------------------------------------------------------------- #
class TestShardArms:
    def test_table_sharding_groups_by_table_preserving_pool_order(self):
        pool = [
            make_arm("sales", ("a",)),
            make_arm("customers", ("b",)),
            make_arm("sales", ("c",)),
            make_arm("customers", ("d",)),
        ]
        shards = shard_arms(pool, shard_by="table")
        assert [shard.key for shard in shards] == ["table:sales", "table:customers"]
        assert [arm.index.key_columns for arm in shards[0].arms] == [("a",), ("c",)]
        assert shards[0].positions == [0, 2]
        assert shards[1].positions == [1, 3]
        # The shards partition the pool: positions are a permutation.
        all_positions = sorted(p for shard in shards for p in shard.positions)
        assert all_positions == list(range(len(pool)))

    def test_single_table_pool_is_one_shard(self):
        pool = [make_arm("sales", (c,)) for c in ("a", "b", "c")]
        shards = shard_arms(pool, shard_by="table")
        assert len(shards) == 1
        assert len(shards[0]) == 3

    def test_hash_sharding_is_deterministic_and_bounded(self):
        pool = [make_arm("sales", (f"c{i}",)) for i in range(40)]
        first = shard_arms(pool, shard_by="hash", n_hash_shards=4)
        second = shard_arms(pool, shard_by="hash", n_hash_shards=4)
        assert [s.key for s in first] == [s.key for s in second]
        assert [s.positions for s in first] == [s.positions for s in second]
        assert all(key.startswith("hash:") for key in (s.key for s in first))
        assert len(first) <= 4
        # zlib.crc32 is process-independent, so keys are stable across runs.
        import zlib

        expected = zlib.crc32(pool[0].index_id.encode("utf-8")) % 4
        assert shard_key_for(pool[0], "hash", 4) == f"hash:{expected}"

    def test_cross_table_arm_falls_back_to_hash_bucket(self):
        plain = make_arm("sales", ("a",))
        assert shard_key_for(plain, "table") == "table:sales"

        class CrossTableIndex:
            tables = ("sales", "customers")
            index_id = "ix_cross"

        class CrossTableArm:
            index = CrossTableIndex()
            index_id = "ix_cross"
            table = "sales"

        key = shard_key_for(CrossTableArm(), "table", n_hash_shards=8)
        assert key.startswith("hash:")

    def test_invalid_strategy_and_bucket_count_rejected(self):
        arm = make_arm("sales", ("a",))
        with pytest.raises(ValueError):
            shard_key_for(arm, "region")
        with pytest.raises(ValueError):
            shard_arms([arm], shard_by="hash", n_hash_shards=0)


# --------------------------------------------------------------------- #
# merge semantics
# --------------------------------------------------------------------- #
class TestMergeShardCandidates:
    def test_empty_shards_are_skipped(self):
        kept = make_scored("sales", ("a",), 1.0, 10, position=0)
        merged = merge_shard_candidates([[], [kept], []], top_k=4)
        assert merged == [kept]
        assert merge_shard_candidates([], top_k=4) == []
        assert merge_shard_candidates([[], []], top_k=None) == []

    def test_k_larger_than_shard_size_keeps_everything(self):
        shard = [
            make_scored("sales", ("a",), 3.0, 10, position=0),
            make_scored("sales", ("b",), 1.0, 10, position=1),
        ]
        merged = merge_shard_candidates([shard], top_k=50)
        assert merged == shard

    def test_none_disables_the_cut(self):
        shard = [
            make_scored("sales", (f"c{i}",), float(i), 10, position=i) for i in range(6)
        ]
        assert merge_shard_candidates([shard], top_k=None) == shard

    def test_merged_survivors_are_in_pool_order(self):
        shard_a = [make_scored("sales", ("a",), 1.0, 10, position=2)]
        shard_b = [make_scored("customers", ("b",), 5.0, 10, position=0)]
        merged = merge_shard_candidates([shard_a, shard_b], top_k=4)
        assert [scored.position for scored in merged] == [0, 2]

    def test_cut_keeps_top_k_by_score(self):
        # Six equal-sized arms in one (table, leading column, templates)
        # group: the Pareto frontier is just the group's best, so the cut
        # reduces to plain top-k by score.
        shard = [
            make_scored("sales", ("a", f"c{i}"), score, 10, position=i, templates={"t"})
            for i, score in enumerate([0.5, 9.0, 3.0, 8.0, 1.0, 7.0])
        ]
        merged = merge_shard_candidates([shard], top_k=3)
        assert {scored.score for scored in merged} == {9.0, 8.0, 7.0}

    def test_every_group_keeps_at_least_its_best_arm(self):
        # Distinct leading columns: each arm is its own group, hence its own
        # frontier — a finite cut never starves a group entirely.
        shard = [
            make_scored("sales", (f"c{i}",), float(i), 10, position=i, templates={"t"})
            for i in range(6)
        ]
        merged = merge_shard_candidates([shard], top_k=2)
        assert len(merged) == 6

    def test_cut_keeps_pareto_frontier_of_each_group(self):
        # One (table, leading column, templates) group under budget pressure:
        # the small low-scored arm is on the frontier and must survive even
        # though it loses the top-k cut, because it wins whenever the bigger
        # winners no longer fit the remaining memory budget.
        group = [
            make_scored("sales", ("a", "b", "c"), 9.0, 900, position=0, templates={"t"}),
            make_scored("sales", ("a", "b"), 8.0, 800, position=1, templates={"t"}),
            make_scored("sales", ("a",), 0.5, 10, position=2, templates={"t"}),
        ]
        filler = [
            make_scored("sales", (f"f{i}",), 5.0 - i * 0.1, 50, position=3 + i, templates={"t"})
            for i in range(4)
        ]
        merged = merge_shard_candidates([group + filler], top_k=2)
        positions = {scored.position for scored in merged}
        assert {0, 2} <= positions, "frontier ends (best score, smallest size) must survive"

    def test_dominated_arms_are_cut(self):
        # Same group, same templates: strictly dominated (lower score, larger
        # size) arms can never be the oracle's pick and are dropped.
        group = [
            make_scored("sales", ("a",), 9.0, 10, position=0, templates={"t"}),
            make_scored("sales", ("a", "b"), 1.0, 500, position=1, templates={"t"}),
        ]
        filler = [
            make_scored("sales", (f"f{i}",), 5.0, 50, position=2 + i, templates={"t"})
            for i in range(4)
        ]
        merged = merge_shard_candidates([group + filler], top_k=2)
        positions = {scored.position for scored in merged}
        assert 0 in positions and 1 not in positions

    def test_invalid_top_k_rejected(self):
        with pytest.raises(ValueError):
            merge_shard_candidates([], top_k=0)


# --------------------------------------------------------------------- #
# configuration and plumbing
# --------------------------------------------------------------------- #
class TestShardingConfig:
    @pytest.mark.parametrize("field,value", [
        ("shard_by", "region"),
        ("n_hash_shards", 0),
        ("shard_top_k", 0),
        ("shard_workers", -1),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            MabConfig(**{field: value})

    def test_configure_sharding_updates_workers(self, tiny_database):
        tuner = MabTuner(tiny_database)
        tuner.configure_sharding("table", shard_workers=4)
        assert tuner.config.shard_workers == 4
        # Omitted keyword leaves the worker count untouched.
        tuner.configure_sharding("hash")
        assert tuner.config.shard_workers == 4
        with pytest.raises(ValueError):
            tuner.configure_sharding("table", shard_workers=-2)

    def test_worker_count_never_exceeds_shards(self, tiny_database):
        tuner = MabTuner(tiny_database, MabConfig(shard_by="table", shard_workers=16))
        assert tuner._shard_worker_count(n_shards=3) == 3
        assert tuner._shard_worker_count(n_shards=40) == 16
        tuner.configure_sharding("table", shard_workers=0)  # one per CPU
        assert tuner._shard_worker_count(n_shards=64) >= 1

    def test_configure_sharding_validates_and_updates(self, tiny_database):
        tuner = MabTuner(tiny_database)
        assert tuner.config.shard_by is None
        tuner.configure_sharding("table", shard_top_k=None, n_hash_shards=4)
        assert tuner.config.shard_by == "table"
        assert tuner.config.shard_top_k is None
        assert tuner.config.n_hash_shards == 4
        # Omitted keywords leave the current values untouched.
        tuner.configure_sharding("hash")
        assert tuner.config.shard_top_k is None
        with pytest.raises(ValueError):
            tuner.configure_sharding("region")
        tuner.configure_sharding(None)
        assert tuner.config.shard_by is None

    def test_session_option_enables_sharding_on_the_mab(self, tiny_database):
        tuner = MabTuner(tiny_database)
        TuningSession(tiny_database, tuner, SimulationOptions(shard_by="table"))
        assert tuner.config.shard_by == "table"

    def test_session_option_is_ignored_by_non_pool_tuners(self, tiny_database):
        tuner = create_tuner("NoIndex", tiny_database)
        session = TuningSession(tiny_database, tuner, SimulationOptions(shard_by="table"))
        assert session.recommend().configuration == []

    def test_reset_keeps_sharding_but_clears_stats(self, tiny_database):
        from tests.conftest import make_sales_query

        tuner = MabTuner(tiny_database, MabConfig(shard_by="table"))
        session = TuningSession(tiny_database, tuner, SimulationOptions())
        session.step([make_sales_query("s#1", "s")])
        session.step([make_sales_query("s#2", "s")])
        assert tuner.last_shard_stats is not None
        tuner.reset()
        assert tuner.config.shard_by == "table"
        assert tuner.last_shard_stats is None


# --------------------------------------------------------------------- #
# end-to-end parity: sharded == monolithic recommendations
# --------------------------------------------------------------------- #
def run_configurations(benchmark_name: str, shard_by: str | None, n_rounds: int = 6):
    """Per-round selected configurations of a MAB session at fixed seeds."""
    benchmark = get_benchmark(benchmark_name)
    database = benchmark.create_database(sample_rows=300, seed=7)
    rounds = StaticWorkload(
        database, benchmark.templates, n_rounds=n_rounds, seed=1
    ).materialise()
    session = TuningSession(
        database,
        create_tuner("MAB", database),
        SimulationOptions(benchmark_name=benchmark_name, shard_by=shard_by),
    )
    configurations = []
    for workload_round in rounds:
        recommendation = session.recommend(round_number=workload_round.round_number)
        configurations.append(
            sorted(index.index_id for index in recommendation.configuration)
        )
        session.execute(workload_round.queries)
        session.observe()
    return configurations, session.tuner


@pytest.mark.parametrize("benchmark_name", ["tpch", "ssb"])
@pytest.mark.parametrize("shard_by", ["table", "hash"])
def test_sharded_recommendations_match_monolithic(benchmark_name, shard_by):
    monolithic, _ = run_configurations(benchmark_name, None)
    sharded, tuner = run_configurations(benchmark_name, shard_by)
    assert sharded == monolithic
    stats = tuner.last_shard_stats
    assert stats is not None
    assert stats.n_shards >= 2
    assert stats.max_shard_size < stats.n_arms
    assert stats.n_candidates <= stats.n_arms
    assert any(index_ids for index_ids in monolithic), "runs must select something"


def test_sharded_parity_holds_at_aggressive_top_k(tiny_database):
    """Even top_k=1 stays selection-preserving thanks to the Pareto frontiers."""
    monolithic, _ = run_configurations("ssb", None)

    benchmark = get_benchmark("ssb")
    database = benchmark.create_database(sample_rows=300, seed=7)
    rounds = StaticWorkload(database, benchmark.templates, n_rounds=6, seed=1).materialise()
    tuner = create_tuner("MAB", database)
    tuner.configure_sharding("table", shard_top_k=1)
    session = TuningSession(database, tuner, SimulationOptions(benchmark_name="ssb"))
    sharded = []
    for workload_round in rounds:
        recommendation = session.recommend(round_number=workload_round.round_number)
        sharded.append(sorted(index.index_id for index in recommendation.configuration))
        session.execute(workload_round.queries)
        session.observe()
    assert sharded == monolithic


@pytest.mark.parametrize("workers", [2, 0])
def test_parallel_shard_scoring_matches_serial(workers):
    """Thread-pooled shard scoring is a pure wall-clock knob: recommendations
    (and the diagnostics the merge produces) are identical at any worker
    count, because shards share only the frozen scorer snapshot and merge in
    shard order."""
    serial, serial_tuner = run_configurations("ssb", "table")

    benchmark = get_benchmark("ssb")
    database = benchmark.create_database(sample_rows=300, seed=7)
    rounds = StaticWorkload(database, benchmark.templates, n_rounds=6, seed=1).materialise()
    tuner = create_tuner("MAB", database)
    tuner.configure_sharding("table", shard_workers=workers)
    session = TuningSession(database, tuner, SimulationOptions(benchmark_name="ssb"))
    parallel = []
    for workload_round in rounds:
        recommendation = session.recommend(round_number=workload_round.round_number)
        parallel.append(sorted(index.index_id for index in recommendation.configuration))
        session.execute(workload_round.queries)
        session.observe()

    assert parallel == serial
    assert tuner.last_shard_stats == serial_tuner.last_shard_stats
    assert any(index_ids for index_ids in parallel), "runs must select something"


def test_sharded_selection_respects_memory_budget(tiny_database):
    from tests.conftest import make_join_query, make_sales_query

    tiny_database.memory_budget_bytes = 5 * 1024 * 1024
    tuner = MabTuner(tiny_database, MabConfig(shard_by="table", shard_top_k=2))
    session = TuningSession(tiny_database, tuner, SimulationOptions())
    session.step([make_sales_query(), make_join_query()])
    recommendation = session.recommend()
    total = sum(
        tiny_database.index_size_bytes(index)
        for index in recommendation.configuration
    )
    assert total <= tiny_database.memory_budget_bytes


def test_bandit_state_stays_global_across_shards(tiny_database):
    """Sharding partitions scoring, not learning: V accumulates globally."""
    from tests.conftest import make_join_query, make_sales_query

    def run(shard_by):
        benchmark_db = get_benchmark("ssb").create_database(sample_rows=200, seed=3)
        tuner = MabTuner(benchmark_db, MabConfig(shard_by=shard_by))
        session = TuningSession(benchmark_db, tuner, SimulationOptions())
        rounds = StaticWorkload(
            benchmark_db, get_benchmark("ssb").templates[:4], n_rounds=4, seed=2
        ).materialise()
        for workload_round in rounds:
            session.step_workload_round(workload_round)
        return tuner

    monolithic = run(None)
    sharded = run("table")
    np.testing.assert_allclose(
        sharded.bandit.scatter_matrix, monolithic.bandit.scatter_matrix
    )
    np.testing.assert_allclose(
        sharded.bandit.response_vector, monolithic.bandit.response_vector
    )
    assert sharded.bandit.inversion_count == monolithic.bandit.inversion_count
