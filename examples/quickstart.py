"""Quickstart: compare NoIndex, PDTool and the MAB tuner on a small TPC-H setup.

Built on the public API (:mod:`repro.api`): a picklable
:class:`~repro.api.DatabaseSpec` describes the identically-seeded databases,
the tuners are named through the registry, and :func:`~repro.api.run_competition`
races them over one shared workload (pass ``workers=3`` to fan the three
tuners out across processes).

Runs a short static workload (the paper's Figure 2/3 setting, scaled down so
it finishes in a few seconds) and prints the per-round convergence series and
the end-to-end totals.

Run with::

    python examples/quickstart.py

``REPRO_SMOKE=1`` shrinks it further for CI smoke runs.
"""

from __future__ import annotations

import os

from repro.api import SimulationOptions, run_competition
from repro.harness import (
    ExperimentSettings,
    build_workload_rounds,
    convergence_series,
    speedup_summary,
    totals_summary,
)
from repro.workloads import get_benchmark

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def main() -> None:
    settings = ExperimentSettings.quick().with_overrides(
        static_rounds=4 if SMOKE else 10,
        sample_rows=500 if SMOKE else 2000,
        scale_factor=1.0 if SMOKE else 10.0,
    )
    benchmark = get_benchmark("tpch")
    database_spec = settings.database_spec(benchmark.name)
    rounds = build_workload_rounds(benchmark, database_spec.create(), "static", settings)
    options = SimulationOptions(benchmark_name="tpch", noise_sigma=settings.noise_sigma)

    print(f"Running a {len(rounds)}-round static TPC-H experiment "
          "(NoIndex vs PDTool vs MAB)...")
    spec = settings.tuner_spec("tpch", "static")
    reports = run_competition(
        database_spec,
        {name: (name, spec) for name in ("NoIndex", "PDTool", "MAB")},
        rounds,
        options,
    )

    print("\nTotal time per round (model-seconds), one column per tuner:")
    print(convergence_series(reports))

    print("\nEnd-to-end totals:")
    print(totals_summary(reports))
    print()
    print(speedup_summary(reports, candidate="MAB", baseline="PDTool"))
    print(speedup_summary(reports, candidate="MAB", baseline="NoIndex"))

    mab = reports["MAB"]
    print(
        f"\nMAB spent {mab.total_recommendation_seconds:.2f}s recommending, "
        f"{mab.total_creation_seconds:.0f}s creating indexes and "
        f"{mab.total_execution_seconds:.0f}s executing queries."
    )


if __name__ == "__main__":
    main()
