"""Quickstart: compare NoIndex, PDTool and the MAB tuner on a small TPC-H setup.

Runs a short static workload (the paper's Figure 2/3 setting, scaled down so
it finishes in a few seconds) and prints the per-round convergence series and
the end-to-end totals.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.harness import (
    ExperimentSettings,
    convergence_series,
    speedup_summary,
    static_experiment,
    totals_summary,
)


def main() -> None:
    settings = ExperimentSettings.quick().with_overrides(
        static_rounds=10,
        sample_rows=2000,
    )
    print("Running a 10-round static TPC-H experiment (NoIndex vs PDTool vs MAB)...")
    reports = static_experiment("tpch", settings)

    print("\nTotal time per round (model-seconds), one column per tuner:")
    print(convergence_series(reports))

    print("\nEnd-to-end totals:")
    print(totals_summary(reports))
    print()
    print(speedup_summary(reports, candidate="MAB", baseline="PDTool"))
    print(speedup_summary(reports, candidate="MAB", baseline="NoIndex"))

    mab = reports["MAB"]
    print(
        f"\nMAB spent {mab.total_recommendation_seconds:.2f}s recommending, "
        f"{mab.total_creation_seconds:.0f}s creating indexes and "
        f"{mab.total_execution_seconds:.0f}s executing queries."
    )


if __name__ == "__main__":
    main()
