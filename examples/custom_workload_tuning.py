"""Tuning a custom (non-benchmark) schema with the session API.

The other examples drive the prepackaged paper benchmarks.  This one shows how
a downstream user would tune *their own* workload with
:class:`repro.api.TuningSession`, which owns the database/tuner/planner/executor
quadruple and exposes the paper's round protocol directly:

1. describe a schema and per-column data generators;
2. materialise a simulated database with a memory budget for indexes;
3. describe the recurring query templates of the application;
4. stream batches of queries through ``session.step(queries)`` — no
   pre-materialised workload list, so a live query stream works the same way.

Run with::

    python examples/custom_workload_tuning.py

``REPRO_SMOKE=1`` shrinks it for CI smoke runs.
"""

from __future__ import annotations

import os

from repro.api import SimulationOptions, TuningSession, create_tuner
from repro.engine import (
    Column,
    ColumnType,
    Database,
    DateRange,
    ForeignKeyRef,
    Schema,
    SequentialKey,
    Table,
    TableSpec,
    UniformFloat,
    UniformInt,
    ZipfianInt,
)
from repro.workloads import StaticWorkload
from repro.workloads.templates import QueryTemplate, between, eq, join

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def build_schema() -> Schema:
    events = Table("events", [
        Column("event_id", ColumnType.INTEGER),
        Column("user_id", ColumnType.INTEGER),
        Column("event_type", ColumnType.INTEGER),
        Column("event_day", ColumnType.DATE),
        Column("duration_ms", ColumnType.FLOAT),
    ], primary_key=("event_id",))
    users = Table("users", [
        Column("user_id", ColumnType.INTEGER),
        Column("country", ColumnType.INTEGER),
        Column("plan", ColumnType.INTEGER),
    ], primary_key=("user_id",))
    return Schema(name="clickstream", tables=[events, users])


def build_database() -> Database:
    specs = [
        TableSpec("events", 40_000_000, {
            "event_id": SequentialKey(),
            "user_id": ForeignKeyRef(2_000_000, skew=1.1),
            "event_type": ZipfianInt(low=0, n_distinct=40, skew=1.5),
            "event_day": DateRange(n_days=365),
            "duration_ms": UniformFloat(1.0, 60_000.0),
        }),
        TableSpec("users", 2_000_000, {
            "user_id": SequentialKey(),
            "country": ZipfianInt(low=0, n_distinct=150, skew=1.3),
            "plan": UniformInt(0, 3),
        }),
    ]
    database = Database.from_specs(
        schema=build_schema(), table_specs=specs,
        sample_rows=500 if SMOKE else 4000, seed=11,
    )
    # Grant a 1x index memory budget, the paper's default operating point.
    database.memory_budget_bytes = int(1.0 * database.data_size_bytes)
    return database


def build_templates() -> list[QueryTemplate]:
    return [
        QueryTemplate(
            "daily_event_report", ("events",),
            payload={"events": ("duration_ms", "event_type")},
            predicates=(between("events", "event_day", 0.02, 0.05),
                        eq("events", "event_type")),
            description="Recent activity for one event type",
        ),
        QueryTemplate(
            "country_funnel", ("events", "users"),
            joins=(join("events", "user_id", "users", "user_id"),),
            payload={"events": ("event_type", "duration_ms"), "users": ("plan",)},
            predicates=(eq("users", "country"),
                        between("events", "event_day", 0.05, 0.15)),
            description="Per-country funnel over a date window",
        ),
        QueryTemplate(
            "plan_usage", ("events", "users"),
            joins=(join("events", "user_id", "users", "user_id"),),
            payload={"events": ("duration_ms",), "users": ("plan", "country")},
            predicates=(eq("users", "plan"),),
            description="Usage roll-up per subscription plan",
        ),
    ]


def main() -> None:
    database = build_database()
    print(f"Simulated database: {database.data_size_bytes / 1e9:.1f} GB of data, "
          f"{database.memory_budget_bytes / 1e9:.1f} GB index budget.")

    # The session streams whatever queries the application produces; here we
    # draw them from a template generator, round by round.
    n_rounds = 4 if SMOKE else 10
    rounds = StaticWorkload(database, build_templates(), n_rounds=n_rounds, seed=1).materialise()
    session = TuningSession(
        database,
        create_tuner("MAB", database),
        SimulationOptions(benchmark_name="clickstream", keep_results=True),
    )
    for workload_round in rounds:
        session.step(workload_round.queries)
    report = session.report

    print("\nround  total_s  creation_s  execution_s  #indexes")
    for round_report in report.rounds:
        print(f"{round_report.round_number:5d}  {round_report.total_seconds:7.1f}  "
              f"{round_report.creation_seconds:10.1f}  {round_report.execution_seconds:11.1f}  "
              f"{round_report.configuration_size:8d}")

    print(f"\nIndexes materialised after {n_rounds} rounds:")
    for index in database.materialised_indexes:
        size_mb = database.index_size_bytes(index) / 1e6
        print(f"  {index.index_id}  ({size_mb:.0f} MB)")

    first = report.rounds[0].execution_seconds
    last = report.rounds[-1].execution_seconds
    print(f"\nExecution time per round went from {first:.1f}s to {last:.1f}s "
          f"({100 * (first - last) / first:.0f}% faster) with no DBA involvement.")


if __name__ == "__main__":
    main()
