"""Data-exploration scenario: a workload whose region of interest shifts.

This reproduces the paper's *dynamic shifting* setting (Figures 4 and 5) on
the Star Schema Benchmark: the query templates are split into disjoint groups
and the active group changes every few rounds, as happens when analysts move
from one exploration question to the next.  The script shows how the bandit
detects the shifts from the workload itself (no DBA involvement), partially
forgets what it learned, and re-converges, while PDTool must be re-invoked
with a fresh training workload after every shift.

Run with::

    python examples/data_exploration_shifting.py
"""

from __future__ import annotations

from repro.core import MabConfig, MabTuner
from repro.harness import (
    ExperimentSettings,
    SimulationOptions,
    convergence_series,
    make_tuner,
    run_simulation,
    totals_summary,
)
from repro.workloads import ShiftingWorkload, get_benchmark


def main() -> None:
    benchmark = get_benchmark("ssb")
    settings = ExperimentSettings.quick().with_overrides(sample_rows=2000)

    def fresh_database():
        return benchmark.create_database(
            scale_factor=settings.scale_factor,
            sample_rows=settings.sample_rows,
            seed=settings.seed,
        )

    # Materialise the shifting workload once so every tuner sees the same queries.
    workload = ShiftingWorkload(
        fresh_database(),
        benchmark.templates,
        n_groups=3,
        rounds_per_group=6,
        seed=settings.workload_seed,
    )
    rounds = workload.materialise()
    shift_rounds = [r.round_number for r in rounds if r.is_shift_round]
    print(f"Workload shifts at rounds {shift_rounds} (3 disjoint template groups).")

    options = SimulationOptions(benchmark_name="ssb", workload_type="shifting")
    reports = {}
    for name in ("NoIndex", "PDTool"):
        database = fresh_database()
        tuner = make_tuner(name, database, "ssb", "shifting", settings)
        reports[name] = run_simulation(database, tuner, rounds, options).report

    mab_database = fresh_database()
    mab = MabTuner(mab_database, MabConfig())
    reports["MAB"] = run_simulation(mab_database, mab, rounds, options).report

    print("\nPer-round totals (watch the spikes right after each shift):")
    print(convergence_series(reports))
    print("\nEnd-to-end totals:")
    print(totals_summary(reports))
    print(
        f"\nThe bandit detected workload shifts in rounds {mab.shift_events} "
        f"and is tracking {mab.known_arm_count} candidate indexes."
    )
    print(
        "Final MAB configuration: "
        + ", ".join(sorted(ix.index_id for ix in mab_database.materialised_indexes))
    )


if __name__ == "__main__":
    main()
