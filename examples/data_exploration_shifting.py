"""Data-exploration scenario: a workload whose region of interest shifts.

This reproduces the paper's *dynamic shifting* setting (Figures 4 and 5) on
the Star Schema Benchmark: the query templates are split into disjoint groups
and the active group changes every few rounds, as happens when analysts move
from one exploration question to the next.  The script shows how the bandit
detects the shifts from the workload itself (no DBA involvement), partially
forgets what it learned, and re-converges, while PDTool must be re-invoked
with a fresh training workload after every shift.

It drives the MAB through the explicit :class:`repro.api.TuningSession` step
cycle — ``recommend() / execute(queries) / observe()`` — to show where each
phase of the paper's protocol happens, while the baselines use the one-shot
``step_workload_round`` convenience.

Run with::

    python examples/data_exploration_shifting.py

``REPRO_SMOKE=1`` shrinks it for CI smoke runs.
"""

from __future__ import annotations

import os

from repro.api import SimulationOptions, TuningSession, create_tuner
from repro.harness import ExperimentSettings, convergence_series, totals_summary
from repro.workloads import ShiftingWorkload, get_benchmark

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def main() -> None:
    benchmark = get_benchmark("ssb")
    settings = ExperimentSettings.quick().with_overrides(
        sample_rows=500 if SMOKE else 2000,
        scale_factor=1.0 if SMOKE else 10.0,
    )
    database_spec = settings.database_spec("ssb")

    # Materialise the shifting workload once so every tuner sees the same queries.
    workload = ShiftingWorkload(
        database_spec.create(),
        benchmark.templates,
        n_groups=3,
        rounds_per_group=3 if SMOKE else 6,
        seed=settings.workload_seed,
    )
    rounds = workload.materialise()
    shift_rounds = [r.round_number for r in rounds if r.is_shift_round]
    print(f"Workload shifts at rounds {shift_rounds} (3 disjoint template groups).")

    options = SimulationOptions(benchmark_name="ssb", workload_type="shifting")
    spec = settings.tuner_spec("ssb", "shifting")
    reports = {}
    for name in ("NoIndex", "PDTool"):
        database = database_spec.create()
        session = TuningSession(database, create_tuner(name, database, spec), options)
        for workload_round in rounds:
            session.step_workload_round(workload_round)
        reports[name] = session.report

    # The bandit, stepped through the explicit phase cycle.
    mab_database = database_spec.create()
    mab = create_tuner("MAB", mab_database, spec)
    mab_session = TuningSession(mab_database, mab, options)
    for workload_round in rounds:
        mab_session.recommend()                      # propose before seeing the round
        mab_session.execute(workload_round.queries)  # materialise + run the round
        mab_session.observe(is_shift_round=workload_round.is_shift_round)
    reports["MAB"] = mab_session.report

    print("\nPer-round totals (watch the spikes right after each shift):")
    print(convergence_series(reports))
    print("\nEnd-to-end totals:")
    print(totals_summary(reports))
    print(
        f"\nThe bandit detected workload shifts in rounds {mab.shift_events} "
        f"and is tracking {mab.known_arm_count} candidate indexes."
    )
    print(
        "Final MAB configuration: "
        + ", ".join(sorted(ix.index_id for ix in mab_database.materialised_indexes))
    )


if __name__ == "__main__":
    main()
