"""Ad-hoc cloud analytics scenario: truly random workloads over IMDb/JOB.

This reproduces the paper's *dynamic random* setting (Figures 6 and 7) on the
Join Order Benchmark: each round draws a random mix of query templates with
roughly a 50 % round-to-round repeat rate, the way a multi-tenant cloud service
sees queries.  PDTool is invoked every four rounds on the queries seen since
its last invocation (the common "nightly tuning" operating model), so its
recommendation time recurs throughout the run, while the bandit keeps adapting
continuously from observed execution statistics.

The three tuners are independent sessions over identically-seeded databases,
so ``random_experiment(..., workers=3)`` runs them in parallel processes with
an identical merged result.

Run with::

    python examples/adhoc_cloud_random.py

``REPRO_SMOKE=1`` shrinks it for CI smoke runs.
"""

from __future__ import annotations

import os

from repro.harness import (
    ExperimentSettings,
    convergence_series,
    exploration_cost_summary,
    random_experiment,
    speedup_summary,
    totals_summary,
)

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def main() -> None:
    settings = ExperimentSettings.quick().with_overrides(
        random_rounds=6 if SMOKE else 12,
        sample_rows=500 if SMOKE else 2000,
        scale_factor=1.0 if SMOKE else 10.0,
    )
    print(f"Running a {settings.random_rounds}-round dynamic random experiment "
          "on IMDb/JOB (3 tuners in parallel)...")
    reports = random_experiment("imdb", settings, workers=3)

    print("\nPer-round totals (PDTool spikes on its invocation rounds 5 and 9):")
    print(convergence_series(reports))

    print("\nEnd-to-end totals:")
    print(totals_summary(reports))
    print()
    print(speedup_summary(reports, candidate="MAB", baseline="PDTool"))
    print(speedup_summary(reports, candidate="MAB", baseline="NoIndex"))

    print("\nExploration cost (recommendation + creation) per tuner:")
    print(exploration_cost_summary(reports))


if __name__ == "__main__":
    main()
