"""Fleet quickstart: tune many tenants at once with a :class:`TuningFleet`.

Built entirely on the public API (:mod:`repro.api`): frozen
:class:`~repro.api.TenantSpec` recipes declare the tenants (here, a roster of
TPC-H tenants sharing one interned database snapshot), the fleet steps them
through the paper's round protocol with one vectorized bandit-scoring pass
per round, and observations are streamed through the out-of-order
``submit``/``drain`` queue — results are deterministic whatever order the
tenants report in.

Run with::

    python examples/fleet_quickstart.py

``REPRO_SMOKE=1`` shrinks the roster and round count for CI smoke runs.
"""

from __future__ import annotations

import os
import random

from repro.api import DatabaseSpec, TenantSpec, TuningFleet
from repro.harness import ExperimentSettings, build_workload_rounds
from repro.workloads import get_benchmark

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

N_TENANTS = 4 if SMOKE else 20
N_ROUNDS = 3 if SMOKE else 8


def main() -> None:
    settings = ExperimentSettings.quick().with_overrides(
        static_rounds=N_ROUNDS,
        sample_rows=500 if SMOKE else 2000,
        scale_factor=1.0,
    )
    benchmark = get_benchmark("tpch")
    database_spec: DatabaseSpec = settings.database_spec(benchmark.name)
    rounds = build_workload_rounds(benchmark, database_spec.create(), "static", settings)

    print(f"Registering {N_TENANTS} TPC-H tenants (one shared database snapshot)...")
    fleet = TuningFleet(
        TenantSpec(f"tenant-{i:03d}", database_spec, tuner="MAB")
        for i in range(N_TENANTS)
    )
    print(
        f"  interner: {fleet.interner.misses} materialisation(s), "
        f"{fleet.interner.hits} tenants served from the shared snapshot"
    )

    # Stream every (tenant, round) submission in a scrambled arrival order —
    # the fleet merges by tenant id and round, so the order is unobservable.
    pending = {tenant_id: list(rounds) for tenant_id in fleet.tenant_ids}
    arrival = random.Random(7)
    submitted = 0
    while any(pending.values()):
        tenant_id = arrival.choice([t for t in fleet.tenant_ids if pending[t]])
        fleet.submit(tenant_id, pending[tenant_id].pop(0).queries)
        submitted += 1
    print(f"Submitted {submitted} rounds out of order; draining...")
    drained = fleet.drain()

    summary = fleet.summary()
    print(
        f"\nDrained {summary.n_rounds} tenant-rounds across "
        f"{summary.n_tenants} tenants "
        f"({summary.rounds_per_second:,.0f} rounds/sec of harness wall time)."
    )

    # Every tenant ran the same workload on the same spec, so every tenant
    # converged to the same configuration — the fleet's parity guarantee.
    configurations = {
        tenant_id: sorted(
            index.index_id
            for index in fleet.session(tenant_id).database.materialised_indexes
        )
        for tenant_id in fleet.tenant_ids
    }
    distinct = {tuple(configuration) for configuration in configurations.values()}
    first = fleet.tenant_ids[0]
    print(f"Distinct converged configurations: {len(distinct)}")
    print(f"Configuration of {first}:")
    for index_id in configurations[first]:
        print(f"  {index_id}")
    final_rounds = drained[first]
    print(
        f"{first}: round {final_rounds[-1].round_number} executed "
        f"{final_rounds[-1].n_queries} queries in "
        f"{final_rounds[-1].execution_seconds:.2f} model-seconds"
    )


if __name__ == "__main__":
    main()
