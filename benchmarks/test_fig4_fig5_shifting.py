"""Figures 4 and 5: MAB vs PDTool vs NoIndex on *dynamic shifting* workloads.

The workload moves through disjoint template groups (data-exploration style);
PDTool is re-invoked right after every shift with the new group as its
training workload (a DBA-favourable assumption), while the bandit detects the
shift from the queries themselves and partially forgets what it has learned.
Figure 4 shows per-round convergence with visible spikes at the shift rounds;
Figure 5 summarises total end-to-end workload time.
"""

from __future__ import annotations

import pytest

from repro.harness import (
    convergence_series,
    shifting_experiment,
    speedup_summary,
    totals_summary,
)
from repro.workloads import BENCHMARK_NAMES

from conftest import write_result


@pytest.mark.parametrize("benchmark_name", BENCHMARK_NAMES)
def test_fig4_fig5_shifting(benchmark, benchmark_name, settings, results_dir):
    """Regenerate the Figure 4 convergence series and Figure 5 totals."""

    def run():
        return shifting_experiment(benchmark_name, settings)

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    write_result(
        results_dir,
        f"fig4_shifting_convergence_{benchmark_name}",
        convergence_series(reports),
    )
    write_result(
        results_dir,
        f"fig5_shifting_totals_{benchmark_name}",
        totals_summary(reports) + "\n" + speedup_summary(reports),
    )

    expected_rounds = settings.shifting_groups * settings.shifting_rounds_per_group
    assert all(report.n_rounds == expected_rounds for report in reports.values())
    # Shift rounds are flagged so the spikes in Figure 4 can be located.
    shift_rounds = [r.round_number for r in reports["MAB"].rounds if r.is_shift_round]
    assert len(shift_rounds) == settings.shifting_groups - 1
    # The bandit adapts: it never degenerates to worse than NoIndex execution.
    assert (
        reports["MAB"].total_execution_seconds
        <= reports["NoIndex"].total_execution_seconds * 1.05
    )
