"""Guard the committed perf trajectory against silent regressions.

``benchmarks/results/BENCH_recommend.json`` is the PR-to-PR record of the
recommend/observe hot-loop latencies.  Overwriting it with worse numbers —
because a change made the loop slower and nobody compared — would quietly
reset the trajectory the ROADMAP tracks.  This script compares a freshly
measured candidate file against the committed baseline and fails when any
shared series' p50 regressed beyond an allowed factor.

Every dict carrying a ``p50_ms`` key is treated as one series, addressed by
its JSON path (e.g. ``incremental.500`` or
``recommend_sharded.series.2000.max_shard``), so new series added by later
PRs are picked up automatically — only series present in *both* files are
compared, and at least one overlapping series is required.

Usage (what the ``perf-trajectory`` CI job runs)::

    python benchmarks/check_perf_trajectory.py \
        baseline.json candidate.json --max-regression 5.0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def collect_p50s(payload, prefix: str = "") -> dict[str, float]:
    """Flatten every ``{"p50_ms": <number>}`` dict into ``{json.path: p50}``."""
    series: dict[str, float] = {}
    if isinstance(payload, dict):
        p50 = payload.get("p50_ms")
        if isinstance(p50, (int, float)) and not isinstance(p50, bool):
            series[prefix.rstrip(".")] = float(p50)
        for key, value in payload.items():
            series.update(collect_p50s(value, f"{prefix}{key}."))
    return series


def compare(
    baseline: dict, candidate: dict, max_regression: float
) -> tuple[list[tuple[str, float, float, float]], list[str]]:
    """Compare the candidate's p50 series against the baseline's.

    Args:
        baseline: Parsed committed benchmark payload.
        candidate: Parsed freshly measured payload.
        max_regression: Largest tolerated candidate/baseline p50 ratio.

    Returns:
        ``(regressions, shared)`` — regressions as ``(series, baseline_ms,
        candidate_ms, ratio)`` tuples, and the list of series names compared.
        Series missing from either side (new benchmarks, retired ones) are
        skipped, as are degenerate zero-valued baselines.
    """
    base = collect_p50s(baseline)
    cand = collect_p50s(candidate)
    shared = sorted(name for name in base if name in cand and base[name] > 0)
    regressions = []
    for name in shared:
        ratio = cand[name] / base[name]
        if ratio > max_regression:
            regressions.append((name, base[name], cand[name], ratio))
    return regressions, shared


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_recommend.json")
    parser.add_argument("candidate", type=Path, help="freshly measured BENCH_recommend.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=5.0,
        help="largest tolerated candidate/baseline p50 ratio (default: 5.0)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        candidate = json.loads(args.candidate.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"perf-trajectory: cannot load inputs: {error}", file=sys.stderr)
        return 2

    regressions, shared = compare(baseline, candidate, args.max_regression)
    if not shared:
        print("perf-trajectory: no overlapping p50 series to compare", file=sys.stderr)
        return 2

    regressed = {name for name, *_ in regressions}
    print(f"perf-trajectory: {len(shared)} series compared (x{args.max_regression} bar)")
    for name in shared:
        if name not in regressed:
            print(f"  ok  {name}")
    if regressions:
        print(f"perf-trajectory: {len(regressions)} series regressed:", file=sys.stderr)
        for name, base_ms, cand_ms, ratio in regressions:
            print(
                f"  FAIL {name}: p50 {base_ms:.4f} ms -> {cand_ms:.4f} ms "
                f"({ratio:.1f}x, bar {args.max_regression}x)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
