"""Guard the committed perf trajectory against silent regressions.

The ``GUARDED_FILES`` under ``benchmarks/results/`` are the PR-to-PR record
of the hot-loop latencies (``BENCH_recommend.json``), the per-placement
session step times (``BENCH_tiered.json``), the multi-tenant fleet
throughput (``BENCH_fleet.json``), and the stress-suite safety runs
(``BENCH_stress.json``).  Overwriting one with worse
numbers — because a change made the loop slower and nobody compared — would
quietly reset the trajectory the ROADMAP tracks.  This script compares
freshly measured candidates against the committed baselines and fails when
any shared series' p50 regressed beyond an allowed factor.

Every dict carrying a ``p50_ms`` key is treated as one series, addressed by
its JSON path (e.g. ``incremental.500`` or
``placements.hot_cold.wall_step``), so new series added by later PRs are
picked up automatically — only series present in *both* files are compared,
and at least one overlapping series is required.

Usage (what the ``perf-trajectory`` CI job runs) — either one file pair::

    python benchmarks/check_perf_trajectory.py \
        baseline.json candidate.json --max-regression 5.0

or two directories, comparing every guarded file present in both::

    python benchmarks/check_perf_trajectory.py \
        /tmp/baseline_results benchmarks/results --max-regression 5.0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Result files under benchmarks/results/ guarded in directory mode.
GUARDED_FILES = (
    "BENCH_recommend.json",
    "BENCH_tiered.json",
    "BENCH_fleet.json",
    "BENCH_stress.json",
)


def collect_p50s(payload, prefix: str = "") -> dict[str, float]:
    """Flatten every ``{"p50_ms": <number>}`` dict into ``{json.path: p50}``."""
    series: dict[str, float] = {}
    if isinstance(payload, dict):
        p50 = payload.get("p50_ms")
        if isinstance(p50, (int, float)) and not isinstance(p50, bool):
            series[prefix.rstrip(".")] = float(p50)
        for key, value in payload.items():
            series.update(collect_p50s(value, f"{prefix}{key}."))
    return series


def compare(
    baseline: dict, candidate: dict, max_regression: float
) -> tuple[list[tuple[str, float, float, float]], list[str]]:
    """Compare the candidate's p50 series against the baseline's.

    Args:
        baseline: Parsed committed benchmark payload.
        candidate: Parsed freshly measured payload.
        max_regression: Largest tolerated candidate/baseline p50 ratio.

    Returns:
        ``(regressions, shared)`` — regressions as ``(series, baseline_ms,
        candidate_ms, ratio)`` tuples, and the list of series names compared.
        Series missing from either side (new benchmarks, retired ones) are
        skipped, as are degenerate zero-valued baselines.
    """
    base = collect_p50s(baseline)
    cand = collect_p50s(candidate)
    shared = sorted(name for name in base if name in cand and base[name] > 0)
    regressions = []
    for name in shared:
        ratio = cand[name] / base[name]
        if ratio > max_regression:
            regressions.append((name, base[name], cand[name], ratio))
    return regressions, shared


def file_pairs(baseline: Path, candidate: Path) -> list[tuple[str, Path, Path]]:
    """Expand the two arguments into ``(label, baseline, candidate)`` pairs.

    Two files compare directly; two directories compare every
    :data:`GUARDED_FILES` entry present in *both* (at least one required).
    """
    if baseline.is_dir() != candidate.is_dir():
        raise ValueError("pass two files or two directories, not a mixture")
    if not baseline.is_dir():
        return [(baseline.name, baseline, candidate)]
    pairs = [
        (name, baseline / name, candidate / name)
        for name in GUARDED_FILES
        if (baseline / name).is_file() and (candidate / name).is_file()
    ]
    if not pairs:
        raise ValueError(
            f"no guarded files present in both directories (looked for: "
            f"{', '.join(GUARDED_FILES)})"
        )
    return pairs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline", type=Path, help="committed results file (or directory of them)"
    )
    parser.add_argument(
        "candidate", type=Path, help="freshly measured results file (or directory)"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=5.0,
        help="largest tolerated candidate/baseline p50 ratio (default: 5.0)",
    )
    args = parser.parse_args(argv)

    try:
        pairs = file_pairs(args.baseline, args.candidate)
        loaded = [
            (label, json.loads(base.read_text()), json.loads(cand.read_text()))
            for label, base, cand in pairs
        ]
    except (OSError, json.JSONDecodeError, ValueError) as error:
        print(f"perf-trajectory: cannot load inputs: {error}", file=sys.stderr)
        return 2

    all_regressions: list[tuple[str, float, float, float]] = []
    all_shared: list[str] = []
    for label, baseline, candidate in loaded:
        prefix = f"{label}:" if len(loaded) > 1 else ""
        regressions, shared = compare(baseline, candidate, args.max_regression)
        all_regressions.extend(
            (f"{prefix}{name}", base_ms, cand_ms, ratio)
            for name, base_ms, cand_ms, ratio in regressions
        )
        all_shared.extend(f"{prefix}{name}" for name in shared)
    if not all_shared:
        print("perf-trajectory: no overlapping p50 series to compare", file=sys.stderr)
        return 2

    regressed = {name for name, *_ in all_regressions}
    print(
        f"perf-trajectory: {len(all_shared)} series compared "
        f"(x{args.max_regression} bar)"
    )
    for name in all_shared:
        if name not in regressed:
            print(f"  ok  {name}")
    if all_regressions:
        print(
            f"perf-trajectory: {len(all_regressions)} series regressed:",
            file=sys.stderr,
        )
        for name, base_ms, cand_ms, ratio in all_regressions:
            print(
                f"  FAIL {name}: p50 {base_ms:.4f} ms -> {cand_ms:.4f} ms "
                f"({ratio:.1f}x, bar {args.max_regression}x)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
