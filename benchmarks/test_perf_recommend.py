"""Micro-benchmark of the recommend/observe hot loop (perf tracking).

Measures the steady-state ``score -> select -> update`` cycle of the C²UCB
learner at realistic arm counts and compares it against a faithful replica of
the seed implementation (full ``np.linalg.inv`` after every update, 3-operand
``np.einsum`` confidence widths).  Results are emitted to
``benchmarks/results/BENCH_recommend.json`` so the perf trajectory is tracked
from PR to PR.

Modes
-----
* default — full measurement; asserts the incremental implementation is at
  least 5x faster than the seed at 500 arms (the ISSUE acceptance bar).
* smoke (``REPRO_BENCH_SMOKE=1``) — fewer rounds and only a generous absolute
  p95 ceiling, suitable for shared CI runners where comparative timing is
  flaky.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial

import numpy as np

from repro.api import DatabaseSpec, SimulationOptions, TuningSession, create_tuner
from repro.core.arms import Arm, shard_arms
from repro.core.linear_bandit import C2UCB
from repro.core.scoring import pack_arm_pool, score_packed
from repro.engine.indexes import IndexDefinition
from repro.workloads import StaticWorkload, get_benchmark

from conftest import write_result

SMOKE_MODE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

DIMENSION = 64
ARM_COUNTS = (100, 500, 2000)
SUPER_ARM_SIZE = 5
ROUNDS = 30 if SMOKE_MODE else 150
WARMUP_ROUNDS = 5
#: Generous absolute ceiling for the smoke assertion (shared CI runners).
SMOKE_P95_CEILING_SECONDS = 0.050
SPEEDUP_FLOOR = 5.0


class SeedC2UCB:
    """Verbatim replica of the seed learner's scoring and update math.

    Kept here (not in ``src``) purely as the benchmark baseline: it lazily
    recomputes ``V^{-1}`` with ``np.linalg.inv`` after every update and pays
    the unoptimised three-operand ``einsum`` for the confidence widths — the
    exact hot-loop costs the incremental implementation removes.
    """

    def __init__(self, dimension: int, regularisation: float = 1.0):
        self.dimension = dimension
        self._v = regularisation * np.eye(dimension)
        self._b = np.zeros(dimension)
        self._v_inverse: np.ndarray | None = None

    def _inverse(self) -> np.ndarray:
        if self._v_inverse is None:
            self._v_inverse = np.linalg.inv(self._v)
        return self._v_inverse

    def upper_confidence_scores(self, contexts: np.ndarray, alpha: float) -> np.ndarray:
        theta = self._inverse() @ self._b
        widths = np.einsum("ij,jk,ik->i", contexts, self._inverse(), contexts)
        return contexts @ theta + alpha * np.sqrt(np.maximum(widths, 0.0))

    def update(self, contexts: np.ndarray, rewards: np.ndarray) -> None:
        self._v = self._v + contexts.T @ contexts
        self._b = self._b + contexts.T @ rewards
        self._v_inverse = None


def run_recommend_loop(bandit, n_arms: int, rounds: int, seed: int = 3) -> np.ndarray:
    """Drive the steady-state loop; returns per-round latencies in seconds."""
    rng = np.random.default_rng(seed)
    contexts = rng.normal(size=(n_arms, DIMENSION))
    latencies = []
    for round_number in range(WARMUP_ROUNDS + rounds):
        started = time.perf_counter()
        scores = bandit.upper_confidence_scores(contexts, alpha=1.0)
        chosen = np.argpartition(scores, -SUPER_ARM_SIZE)[-SUPER_ARM_SIZE:]
        bandit.update(contexts[chosen], rng.normal(size=SUPER_ARM_SIZE))
        if round_number >= WARMUP_ROUNDS:
            latencies.append(time.perf_counter() - started)
    return np.asarray(latencies)


def summarise(latencies: np.ndarray) -> dict:
    return {
        "p50_ms": round(float(np.percentile(latencies, 50)) * 1e3, 4),
        "p95_ms": round(float(np.percentile(latencies, 95)) * 1e3, 4),
        "mean_ms": round(float(latencies.mean()) * 1e3, 4),
        "rounds_per_second": round(1.0 / float(latencies.mean()), 1),
    }


def test_recommend_loop_perf(results_dir):
    payload = {
        "dimension": DIMENSION,
        "super_arm_size": SUPER_ARM_SIZE,
        "rounds": ROUNDS,
        "smoke_mode": SMOKE_MODE,
        "incremental": {},
        "seed_baseline": {},
    }
    for n_arms in ARM_COUNTS:
        fast = run_recommend_loop(C2UCB(dimension=DIMENSION), n_arms, ROUNDS)
        payload["incremental"][str(n_arms)] = summarise(fast)
        if not SMOKE_MODE:
            naive = run_recommend_loop(SeedC2UCB(dimension=DIMENSION), n_arms, ROUNDS)
            payload["seed_baseline"][str(n_arms)] = summarise(naive)
            payload["seed_baseline"][str(n_arms)]["speedup_vs_seed"] = round(
                float(np.percentile(naive, 50)) / float(np.percentile(fast, 50)), 2
            )

    path = results_dir / "BENCH_recommend.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    lines = [f"recommend-loop micro-benchmark (d={DIMENSION}, smoke={SMOKE_MODE})"]
    for n_arms in ARM_COUNTS:
        entry = payload["incremental"][str(n_arms)]
        line = (
            f"  {n_arms:>5} arms: p50 {entry['p50_ms']:.3f} ms, "
            f"p95 {entry['p95_ms']:.3f} ms, {entry['rounds_per_second']:.0f} rounds/s"
        )
        baseline = payload["seed_baseline"].get(str(n_arms))
        if baseline:
            line += f"  ({baseline['speedup_vs_seed']:.1f}x vs seed)"
        lines.append(line)
    write_result(results_dir, "BENCH_recommend", "\n".join(lines))

    if SMOKE_MODE:
        p95_at_500 = payload["incremental"]["500"]["p95_ms"] / 1e3
        assert p95_at_500 < SMOKE_P95_CEILING_SECONDS, (
            f"recommend p95 at 500 arms regressed: {p95_at_500 * 1e3:.2f} ms "
            f"(ceiling {SMOKE_P95_CEILING_SECONDS * 1e3:.0f} ms)"
        )
    else:
        speedup = payload["seed_baseline"]["500"]["speedup_vs_seed"]
        assert speedup >= SPEEDUP_FLOOR, (
            f"incremental recommend loop only {speedup:.1f}x faster than the "
            f"seed implementation at 500 arms (floor {SPEEDUP_FLOOR}x)"
        )


# --------------------------------------------------------------------- #
# sharded scoring (the critical path of a partitioned scoring pass)
# --------------------------------------------------------------------- #
SHARD_SIZE = 125
SHARDED_ARM_COUNTS = (500, 1000, 2000)
SHARDED_ROUNDS = 20 if SMOKE_MODE else 80
#: Full-mode bar: with a fixed shard size, the per-shard critical path must
#: stay (roughly) flat as the total pool quadruples from 500 to 2000 arms.
MAX_SHARD_GROWTH_CEILING = 3.0
#: Generous absolute smoke ceiling on the per-shard critical path.
SMOKE_MAX_SHARD_P95_CEILING_SECONDS = 0.025


def build_sharded_pool(n_arms: int) -> tuple[list[Arm], list]:
    """A synthetic arm pool of ``n_arms // SHARD_SIZE`` equal table shards."""
    arms = [
        Arm(index=IndexDefinition(f"t{position // SHARD_SIZE}", (f"c{position}",)))
        for position in range(n_arms)
    ]
    return arms, shard_arms(arms, shard_by="table")


def run_sharded_loop(n_arms: int, rounds: int, seed: int = 5, workers: int = 1):
    """Drive the sharded steady-state scoring loop with a global learner.

    Per round: freeze one ``LinearScorer`` snapshot, score every shard's
    context slice independently (recording each shard's latency — the max is
    the critical path a per-shard parallel pass would pay), then apply the
    round's rank-k update to the single global ``V⁻¹``, exactly as
    ``MabTuner`` does in shard mode.  ``workers > 1`` scores the shards on a
    thread pool, mirroring ``MabConfig.shard_workers``.
    """
    _, shards = build_sharded_pool(n_arms)
    rng = np.random.default_rng(seed)
    contexts_by_shard = [
        rng.normal(size=(len(shard), DIMENSION)) for shard in shards
    ]
    all_contexts = np.vstack(contexts_by_shard)
    bandit = C2UCB(dimension=DIMENSION)
    pool = ThreadPoolExecutor(max_workers=workers) if workers > 1 else None

    def score_shard(scorer, contexts):
        shard_started = time.perf_counter()
        scores = scorer.upper_confidence_scores(contexts, alpha=1.0)
        keep = min(SUPER_ARM_SIZE, len(scores))
        top = np.argpartition(scores, -keep)[-keep:]
        return top, time.perf_counter() - shard_started

    total_latencies, max_shard_latencies = [], []
    try:
        for round_number in range(WARMUP_ROUNDS + rounds):
            round_started = time.perf_counter()
            scorer = bandit.scorer()
            outcomes = (
                list(pool.map(partial(score_shard, scorer), contexts_by_shard))
                if pool is not None
                else [score_shard(scorer, contexts) for contexts in contexts_by_shard]
            )
            shard_seconds = [seconds for _, seconds in outcomes]
            chosen = rng.choice(n_arms, size=SUPER_ARM_SIZE, replace=False)
            bandit.update(all_contexts[chosen], rng.normal(size=SUPER_ARM_SIZE))
            if round_number >= WARMUP_ROUNDS:
                total_latencies.append(time.perf_counter() - round_started)
                max_shard_latencies.append(max(shard_seconds))
    finally:
        if pool is not None:
            pool.shutdown()
    return np.asarray(total_latencies), np.asarray(max_shard_latencies), len(shards)


def test_recommend_sharded_perf(results_dir):
    """Emit the ``recommend_sharded`` series: scoring cost vs shard size.

    With the shard size pinned at ``SHARD_SIZE`` arms, growing the pool adds
    shards, not shard width — so the per-shard critical path (``max_shard``)
    must stay flat while the monolithic pass (``full_pool``) grows with the
    total arm count.  That flat line is what per-shard parallelism converts
    into wall-clock at large schemas.
    """
    series: dict[str, dict] = {}
    for n_arms in SHARDED_ARM_COUNTS:
        full = run_recommend_loop(C2UCB(dimension=DIMENSION), n_arms, SHARDED_ROUNDS)
        totals, max_shard, n_shards = run_sharded_loop(n_arms, SHARDED_ROUNDS)
        series[str(n_arms)] = {
            "n_shards": n_shards,
            "shard_size": SHARD_SIZE,
            "full_pool": summarise(full),
            "sharded_total": summarise(totals),
            "max_shard": summarise(max_shard),
        }

    path = results_dir / "BENCH_recommend.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["recommend_sharded"] = {
        "rounds": SHARDED_ROUNDS,
        "smoke_mode": SMOKE_MODE,
        "series": series,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"sharded scoring (d={DIMENSION}, shard_size={SHARD_SIZE}, smoke={SMOKE_MODE})"
    ]
    for n_arms in SHARDED_ARM_COUNTS:
        entry = series[str(n_arms)]
        lines.append(
            f"  {n_arms:>5} arms / {entry['n_shards']:>2} shards: "
            f"full-pool p50 {entry['full_pool']['p50_ms']:.3f} ms, "
            f"sharded total p50 {entry['sharded_total']['p50_ms']:.3f} ms, "
            f"max-shard p50 {entry['max_shard']['p50_ms']:.3f} ms"
        )
    write_result(results_dir, "BENCH_recommend_sharded", "\n".join(lines))

    if SMOKE_MODE:
        max_shard_p95 = series["500"]["max_shard"]["p95_ms"] / 1e3
        assert max_shard_p95 < SMOKE_MAX_SHARD_P95_CEILING_SECONDS, (
            f"per-shard scoring critical path regressed: p95 "
            f"{max_shard_p95 * 1e3:.2f} ms at 500 arms "
            f"(ceiling {SMOKE_MAX_SHARD_P95_CEILING_SECONDS * 1e3:.0f} ms)"
        )
    else:
        at_500 = series["500"]["max_shard"]["p50_ms"]
        at_2000 = series["2000"]["max_shard"]["p50_ms"]
        growth = at_2000 / at_500
        assert growth < MAX_SHARD_GROWTH_CEILING, (
            f"per-shard scoring cost grew {growth:.2f}x while the pool grew 4x "
            f"at a fixed shard size — sharding no longer bounds the critical "
            f"path (ceiling {MAX_SHARD_GROWTH_CEILING}x)"
        )


# --------------------------------------------------------------------- #
# parallel shard scoring (MabConfig.shard_workers)
# --------------------------------------------------------------------- #
PARALLEL_ARM_COUNT = 2000
PARALLEL_WORKER_COUNTS = (1, 2, 4)
PARALLEL_ROUNDS = 20 if SMOKE_MODE else 80
#: Thread fan-out must never cost more than this factor over serial scoring
#: (on a 1-CPU container the pool is pure overhead; on multi-core hosts the
#: flat max-shard line converts into wall-clock instead).
PARALLEL_OVERHEAD_CEILING = 5.0


def test_recommend_sharded_parallel_perf(results_dir):
    """Emit the ``sharded_parallel`` series: thread-pooled vs serial shard pass.

    The per-shard critical path is already flat (see ``recommend_sharded``);
    ``MabConfig.shard_workers`` is the knob that turns it into wall-clock on
    multi-core hosts.  This container has 1 CPU, so the interesting number
    here is the *overhead* of the thread fan-out, which must stay bounded —
    the wall-clock win itself needs real hardware (ROADMAP item).
    """
    series: dict[str, dict] = {}
    for workers in PARALLEL_WORKER_COUNTS:
        totals, max_shard, n_shards = run_sharded_loop(
            PARALLEL_ARM_COUNT, PARALLEL_ROUNDS, workers=workers
        )
        series[str(workers)] = {
            "n_shards": n_shards,
            "total": summarise(totals),
            "max_shard": summarise(max_shard),
        }

    path = results_dir / "BENCH_recommend.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["sharded_parallel"] = {
        "n_arms": PARALLEL_ARM_COUNT,
        "shard_size": SHARD_SIZE,
        "rounds": PARALLEL_ROUNDS,
        "smoke_mode": SMOKE_MODE,
        "series": series,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"parallel shard scoring ({PARALLEL_ARM_COUNT} arms / "
        f"{series['1']['n_shards']} shards, smoke={SMOKE_MODE})"
    ]
    for workers in PARALLEL_WORKER_COUNTS:
        entry = series[str(workers)]
        lines.append(
            f"  {workers} worker(s): total p50 {entry['total']['p50_ms']:.3f} ms, "
            f"max-shard p50 {entry['max_shard']['p50_ms']:.3f} ms"
        )
    write_result(results_dir, "BENCH_recommend_parallel", "\n".join(lines))

    serial_p50 = series["1"]["total"]["p50_ms"]
    for workers in PARALLEL_WORKER_COUNTS[1:]:
        ratio = series[str(workers)]["total"]["p50_ms"] / max(serial_p50, 1e-9)
        assert ratio < PARALLEL_OVERHEAD_CEILING, (
            f"thread fan-out overhead at {workers} workers is {ratio:.2f}x the "
            f"serial sharded pass (ceiling {PARALLEL_OVERHEAD_CEILING}x)"
        )


# --------------------------------------------------------------------- #
# packed scoring core (repro.core.scoring: pack -> blocked GEMM -> merge)
# --------------------------------------------------------------------- #
PACKED_ARM_COUNTS = (500, 1000, 2000)
PACKED_ROUNDS = 20 if SMOKE_MODE else 80
#: The packed pass replaces the per-shard python scoring loop with one flat
#: pack + blocked GEMM over row slices; packing is paid inside the round, so
#: the bar is that the whole packed round never costs more than this factor
#: over the legacy per-shard loop.
PACKED_OVERHEAD_CEILING = 3.0
#: Generous absolute smoke ceiling on a serial packed round.
SMOKE_PACKED_P95_CEILING_SECONDS = 0.050
PACKED_WORKER_COUNTS = (1, 2, 4)
#: Absolute ceiling on a process-pooled packed round.  This container has
#: 1 CPU, so the pool is pure overhead (shared-memory publish + dispatch +
#: result copy-out); the wall-clock win needs real hardware — same caveat as
#: ``sharded_parallel``, which is why the bar here is absolute, not relative.
PACKED_PARALLEL_P95_CEILING_SECONDS = 0.5


def run_packed_loop(n_arms: int, rounds: int, seed: int = 5, workers: int = 1):
    """Drive the packed steady-state scoring loop with a global learner.

    Per round: freeze one ``LinearScorer`` snapshot, pack the per-shard
    context blocks into one flat pool (packing cost stays inside the timed
    round — ``MabTuner._score_packed`` re-packs every recommend call), score
    everything with :func:`repro.core.scoring.score_packed`, take each
    block's top-k from its row slice, then apply the round's rank-k update
    to the single global ``V⁻¹``.  ``workers > 1`` publishes the pool into
    shared memory and fans the blocks out over a process pool, mirroring
    ``ScoringConfig(workers=...)``.
    """
    _, shards = build_sharded_pool(n_arms)
    rng = np.random.default_rng(seed)
    contexts_by_shard = [
        rng.normal(size=(len(shard), DIMENSION)) for shard in shards
    ]
    positions, sizes, offset = [], [], 0
    for block in contexts_by_shard:
        positions.append(list(range(offset, offset + len(block))))
        sizes.append([0] * len(block))
        offset += len(block)
    keys = [shard.key for shard in shards]
    all_contexts = np.vstack(contexts_by_shard)
    bandit = C2UCB(dimension=DIMENSION)

    latencies, used_processes = [], False
    for round_number in range(WARMUP_ROUNDS + rounds):
        started = time.perf_counter()
        scorer = bandit.scorer()
        packed = pack_arm_pool(contexts_by_shard, positions, sizes, keys)
        result = score_packed(
            packed, scorer.theta, scorer.v_inverse, alpha=1.0, workers=workers
        )
        for start, stop in packed.block_slices():
            block_scores = result.scores[start:stop]
            keep = min(SUPER_ARM_SIZE, len(block_scores))
            np.argpartition(block_scores, -keep)[-keep:]
        chosen = rng.choice(n_arms, size=SUPER_ARM_SIZE, replace=False)
        bandit.update(all_contexts[chosen], rng.normal(size=SUPER_ARM_SIZE))
        if round_number >= WARMUP_ROUNDS:
            latencies.append(time.perf_counter() - started)
            used_processes = used_processes or result.used_processes
    return np.asarray(latencies), used_processes, len(shards)


def test_recommend_packed_perf(results_dir):
    """Emit the ``recommend_packed`` series: packed pass vs per-shard loop.

    Same pools, same shard boundaries, bit-identical scores (the parity
    suite proves that); this series tracks what the flat pack + blocked
    GEMM costs relative to the legacy per-shard python loop it replaced.
    """
    series: dict[str, dict] = {}
    for n_arms in PACKED_ARM_COUNTS:
        loop_totals, _, n_shards = run_sharded_loop(n_arms, PACKED_ROUNDS)
        packed_totals, _, _ = run_packed_loop(n_arms, PACKED_ROUNDS)
        series[str(n_arms)] = {
            "n_shards": n_shards,
            "shard_size": SHARD_SIZE,
            "per_shard_loop": summarise(loop_totals),
            "packed": summarise(packed_totals),
        }

    path = results_dir / "BENCH_recommend.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["recommend_packed"] = {
        "rounds": PACKED_ROUNDS,
        "smoke_mode": SMOKE_MODE,
        "series": series,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"packed scoring (d={DIMENSION}, shard_size={SHARD_SIZE}, smoke={SMOKE_MODE})"
    ]
    for n_arms in PACKED_ARM_COUNTS:
        entry = series[str(n_arms)]
        lines.append(
            f"  {n_arms:>5} arms / {entry['n_shards']:>2} shards: "
            f"per-shard loop p50 {entry['per_shard_loop']['p50_ms']:.3f} ms, "
            f"packed p50 {entry['packed']['p50_ms']:.3f} ms"
        )
    write_result(results_dir, "BENCH_recommend_packed", "\n".join(lines))

    if SMOKE_MODE:
        packed_p95 = series["500"]["packed"]["p95_ms"] / 1e3
        assert packed_p95 < SMOKE_PACKED_P95_CEILING_SECONDS, (
            f"packed scoring round regressed: p95 {packed_p95 * 1e3:.2f} ms "
            f"at 500 arms (ceiling {SMOKE_PACKED_P95_CEILING_SECONDS * 1e3:.0f} ms)"
        )
    else:
        for n_arms in PACKED_ARM_COUNTS:
            entry = series[str(n_arms)]
            ratio = entry["packed"]["p50_ms"] / max(
                entry["per_shard_loop"]["p50_ms"], 1e-9
            )
            assert ratio < PACKED_OVERHEAD_CEILING, (
                f"packed scoring round at {n_arms} arms is {ratio:.2f}x the "
                f"per-shard loop it replaced (ceiling {PACKED_OVERHEAD_CEILING}x)"
            )


def test_recommend_packed_parallel_perf(results_dir):
    """Emit the ``packed_parallel`` series: process-pooled vs serial packed pass.

    ``ScoringConfig(workers=N)`` publishes the packed pool into shared
    memory and scores whole blocks across a process pool.  On this 1-CPU
    container the pool is pure overhead, so the guard is an absolute ceiling
    on the pooled round; whether processes actually engaged is recorded per
    worker count (the scoring core degrades to the bit-identical serial pass
    wherever shared memory is unavailable).
    """
    series: dict[str, dict] = {}
    for workers in PACKED_WORKER_COUNTS:
        totals, used_processes, n_shards = run_packed_loop(
            PARALLEL_ARM_COUNT, PACKED_ROUNDS, workers=workers
        )
        series[str(workers)] = {
            "n_shards": n_shards,
            "used_processes": used_processes,
            "total": summarise(totals),
        }

    path = results_dir / "BENCH_recommend.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["packed_parallel"] = {
        "n_arms": PARALLEL_ARM_COUNT,
        "shard_size": SHARD_SIZE,
        "rounds": PACKED_ROUNDS,
        "smoke_mode": SMOKE_MODE,
        "series": series,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"parallel packed scoring ({PARALLEL_ARM_COUNT} arms / "
        f"{series['1']['n_shards']} blocks, smoke={SMOKE_MODE})"
    ]
    for workers in PACKED_WORKER_COUNTS:
        entry = series[str(workers)]
        lines.append(
            f"  {workers} worker(s): total p50 {entry['total']['p50_ms']:.3f} ms "
            f"(processes={'yes' if entry['used_processes'] else 'no'})"
        )
    write_result(results_dir, "BENCH_recommend_packed_parallel", "\n".join(lines))

    for workers in PACKED_WORKER_COUNTS[1:]:
        pooled_p95 = series[str(workers)]["total"]["p95_ms"] / 1e3
        assert pooled_p95 < PACKED_PARALLEL_P95_CEILING_SECONDS, (
            f"process-pooled packed round at {workers} workers: p95 "
            f"{pooled_p95 * 1e3:.1f} ms "
            f"(ceiling {PACKED_PARALLEL_P95_CEILING_SECONDS * 1e3:.0f} ms)"
        )


# --------------------------------------------------------------------- #
# session-step overhead (the per-round cost of the public API machinery)
# --------------------------------------------------------------------- #
SESSION_ROUNDS = 10 if SMOKE_MODE else 40
#: Generous ceiling on the pure session bookkeeping overhead per round.
SESSION_NOOP_P95_CEILING_SECONDS = 0.050


def test_session_step_overhead(results_dir):
    """Emit a ``session_step`` timing series next to the recommend-loop numbers.

    Two probes: a no-op round (NoIndex tuner, empty query batch) isolates the
    pure :class:`TuningSession` bookkeeping overhead, and a MAB session over a
    tiny SSB static workload gives the realistic end-to-end per-round latency
    of the public API path.
    """
    spec = DatabaseSpec("ssb", scale_factor=0.1, sample_rows=200, seed=4)
    benchmark = get_benchmark("ssb")
    workload = StaticWorkload(
        spec.create(), benchmark.templates[:4], n_rounds=SESSION_ROUNDS, seed=1
    ).materialise()

    series: dict[str, dict] = {}

    noop_database = spec.create()
    noop_session = TuningSession(
        noop_database,
        create_tuner("NoIndex", noop_database),
        SimulationOptions(benchmark_name="ssb"),
    )
    latencies = []
    for _ in range(SESSION_ROUNDS):
        started = time.perf_counter()
        noop_session.step([])
        latencies.append(time.perf_counter() - started)
    series["noop_overhead"] = summarise(np.asarray(latencies))

    mab_database = spec.create()
    mab_session = TuningSession(
        mab_database,
        create_tuner("MAB", mab_database),
        SimulationOptions(benchmark_name="ssb"),
    )
    latencies = []
    for workload_round in workload:
        started = time.perf_counter()
        mab_session.step_workload_round(workload_round)
        latencies.append(time.perf_counter() - started)
    series["mab_tiny_ssb"] = summarise(np.asarray(latencies))
    series["mab_tiny_ssb"]["wall_phase_totals_s"] = {
        phase: round(seconds, 4)
        for phase, seconds in mab_session.report.wall_phase_totals().items()
    }

    path = results_dir / "BENCH_recommend.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["session_step"] = {"rounds": SESSION_ROUNDS, "smoke_mode": SMOKE_MODE, **series}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    write_result(
        results_dir,
        "BENCH_session_step",
        "\n".join(
            [
                f"session-step overhead (rounds={SESSION_ROUNDS}, smoke={SMOKE_MODE})",
                f"  no-op round:  p50 {series['noop_overhead']['p50_ms']:.3f} ms, "
                f"p95 {series['noop_overhead']['p95_ms']:.3f} ms",
                f"  MAB tiny SSB: p50 {series['mab_tiny_ssb']['p50_ms']:.3f} ms, "
                f"p95 {series['mab_tiny_ssb']['p95_ms']:.3f} ms",
            ]
        ),
    )

    noop_p95 = series["noop_overhead"]["p95_ms"] / 1e3
    assert noop_p95 < SESSION_NOOP_P95_CEILING_SECONDS, (
        f"TuningSession bookkeeping overhead regressed: p95 {noop_p95 * 1e3:.2f} ms "
        f"per no-op round (ceiling {SESSION_NOOP_P95_CEILING_SECONDS * 1e3:.0f} ms)"
    )
