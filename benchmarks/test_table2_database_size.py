"""Table II: static TPC-H and TPC-H Skew under different database sizes.

The paper runs the static experiment at scale factors 1, 10 and 100 and
reports total workload minutes for PDTool and MAB.  Its observations: at SF 1
the two are close; as the database grows, execution time dominates (>91 % of
total) and the cost of sub-optimal index choices is magnified, which is where
the bandit's observation-driven search pays off most on skewed data.
"""

from __future__ import annotations

from repro.harness import table2_database_size, table2_database_size_experiment

from conftest import PROFILE, write_result

SCALE_FACTORS = (1.0, 10.0, 100.0) if PROFILE == "paper" else (1.0, 10.0)


def test_table2_database_size(benchmark, settings, results_dir):
    """Regenerate Table II."""

    def run():
        return table2_database_size_experiment(
            benchmark_names=("tpch", "tpch_skew"),
            scale_factors=SCALE_FACTORS,
            settings=settings,
            tuners=("PDTool", "MAB"),
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for benchmark_name, by_scale in results.items():
        sections.append(f"[{benchmark_name}]")
        sections.append(table2_database_size(by_scale))
    write_result(results_dir, "table2_database_size", "\n".join(sections))

    for benchmark_name in ("tpch", "tpch_skew"):
        by_scale = results[benchmark_name]
        assert set(by_scale) == set(SCALE_FACTORS)
        # total workload time grows with the database size for both tuners
        for tuner in ("PDTool", "MAB"):
            totals = [by_scale[scale][tuner].total_seconds for scale in sorted(by_scale)]
            assert totals == sorted(totals)
        # execution dominates at the larger scale factors (paper: >91 %)
        largest = by_scale[max(by_scale)]
        for tuner in ("PDTool", "MAB"):
            report = largest[tuner]
            assert report.total_execution_seconds > 0.5 * report.total_seconds
