"""Fleet scale benchmark: throughput and memory at 10/100/1000 tenants.

Drives a :class:`~repro.api.TuningFleet` of identical TPC-H quick tenants
(the paper's DBaaS framing: one control plane tuning a large roster) and
records, per roster size:

* ``sessions_per_second`` — tenant-rounds completed per wall second of the
  fleet's batched step loop;
* ``p50_ms`` — median wall milliseconds per tenant-round (the series the
  perf trajectory guard tracks from PR to PR);
* ``bytes_per_tenant`` — traced allocation of fleet construction divided by
  the roster size, which is where database interning shows up: tenants share
  one statistics snapshot instead of materialising 1000 copies.

Results land in ``benchmarks/results/BENCH_fleet.json`` (guarded by
``check_perf_trajectory.py``).  ``REPRO_BENCH_SMOKE=1`` keeps the same
roster sizes — the trajectory guard compares series by key — but runs fewer
rounds per roster.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import numpy as np

from repro.api import DatabaseSpec, FleetConfig, TenantSpec, TuningFleet
from repro.workloads import StaticWorkload, get_benchmark

from conftest import write_result

SMOKE_MODE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Roster sizes (fixed across modes: the trajectory guard matches by key).
TENANT_COUNTS = (10, 100, 1000)
ROUNDS = 1 if SMOKE_MODE else 3
N_TEMPLATES = 4
#: Generous absolute smoke ceiling per tenant-round (shared CI runners).
SMOKE_P50_CEILING_MS = 250.0


def fleet_spec() -> DatabaseSpec:
    return DatabaseSpec("tpch", scale_factor=1.0, sample_rows=300, seed=7)


def build_rounds():
    benchmark = get_benchmark("tpch")
    database = fleet_spec().create()
    return StaticWorkload(
        database, benchmark.templates[:N_TEMPLATES], n_rounds=ROUNDS, seed=2
    ).materialise()


def build_fleet(n_tenants: int, intern: bool = True) -> TuningFleet:
    return TuningFleet(
        (TenantSpec(f"t{i:04d}", fleet_spec(), tuner="MAB") for i in range(n_tenants)),
        FleetConfig(intern_databases=intern),
    )


def measure_roster(n_tenants: int, rounds) -> dict:
    tracemalloc.start()
    started = time.perf_counter()
    fleet = build_fleet(n_tenants)
    startup_seconds = time.perf_counter() - started
    traced_bytes, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert fleet.interner.misses == 1  # the interning satellite's guarantee
    assert fleet.interner.hits == n_tenants - 1

    per_tenant_round_ms = []
    stepped_seconds = 0.0
    for workload_round in rounds:
        wave = {tid: workload_round.queries for tid in fleet.tenant_ids}
        wave_started = time.perf_counter()
        fleet.step(wave)
        elapsed = time.perf_counter() - wave_started
        stepped_seconds += elapsed
        per_tenant_round_ms.append(elapsed / n_tenants * 1e3)

    summary = fleet.summary()
    tenant_rounds = summary.n_rounds
    return {
        "p50_ms": round(float(np.percentile(per_tenant_round_ms, 50)), 4),
        "sessions_per_second": round(tenant_rounds / stepped_seconds, 1),
        "bytes_per_tenant": int(traced_bytes / n_tenants),
        "startup_seconds": round(startup_seconds, 3),
        "tenant_rounds": tenant_rounds,
        "interner": {"misses": fleet.interner.misses, "hits": fleet.interner.hits},
    }


def test_fleet_scale(results_dir):
    rounds = build_rounds()
    payload = {
        "benchmark": "tpch",
        "tuner": "MAB",
        "rounds": ROUNDS,
        "templates": N_TEMPLATES,
        "smoke_mode": SMOKE_MODE,
        "tenants": {},
    }
    for n_tenants in TENANT_COUNTS:
        payload["tenants"][str(n_tenants)] = measure_roster(n_tenants, rounds)

    if not SMOKE_MODE:
        # Show the interning win: construction bytes for a 100-tenant roster
        # of fully private databases vs the shared-snapshot roster above.
        tracemalloc.start()
        private_fleet = build_fleet(100, intern=False)
        private_bytes, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del private_fleet
        interned = payload["tenants"]["100"]["bytes_per_tenant"]
        payload["interning_comparison"] = {
            "bytes_per_tenant_private": int(private_bytes / 100),
            "bytes_per_tenant_interned": interned,
            "savings_factor": round(private_bytes / 100 / max(interned, 1), 2),
        }

    path = results_dir / "BENCH_fleet.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    lines = [
        f"fleet scale benchmark (tpch quick, MAB, {ROUNDS} round(s), "
        f"{N_TEMPLATES} templates, smoke={SMOKE_MODE})"
    ]
    for n_tenants in TENANT_COUNTS:
        entry = payload["tenants"][str(n_tenants)]
        lines.append(
            f"  {n_tenants:>5} tenants: {entry['sessions_per_second']:>8.1f} "
            f"sessions/s, p50 {entry['p50_ms']:.3f} ms/tenant-round, "
            f"{entry['bytes_per_tenant'] / 1024:.0f} KiB/tenant, "
            f"startup {entry['startup_seconds']:.2f}s"
        )
    comparison = payload.get("interning_comparison")
    if comparison:
        lines.append(
            f"  interning at 100 tenants: "
            f"{comparison['bytes_per_tenant_interned'] / 1024:.0f} KiB/tenant shared vs "
            f"{comparison['bytes_per_tenant_private'] / 1024:.0f} KiB/tenant private "
            f"({comparison['savings_factor']:.1f}x)"
        )
    write_result(results_dir, "BENCH_fleet", "\n".join(lines))

    largest = payload["tenants"][str(TENANT_COUNTS[-1])]
    if SMOKE_MODE:
        assert largest["p50_ms"] < SMOKE_P50_CEILING_MS, (
            f"fleet tenant-round p50 at {TENANT_COUNTS[-1]} tenants regressed: "
            f"{largest['p50_ms']:.1f} ms (ceiling {SMOKE_P50_CEILING_MS:.0f} ms)"
        )
    else:
        comparison = payload["interning_comparison"]
        assert comparison["savings_factor"] > 2.0, (
            "database interning no longer pays for itself: private construction "
            f"is only {comparison['savings_factor']:.1f}x the interned bytes/tenant"
        )
