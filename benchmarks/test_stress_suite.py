"""The workload stress suite: every registered tuner vs every adversarial stressor.

The paper's pitch is *safe* online tuning under ad-hoc, shifting workloads.
This driver makes that claim measurable: each registered stressor
(:func:`repro.workloads.available_stressors` — flash traffic, seasonal drift,
template churn, schema growth, tier migration) is materialised once and every
registered tuner races over the identical round stream.  Per (stressor,
tuner) pair the :class:`~repro.api.SafetyReport` layer pairs the run against
the NoIndex baseline and reports the safety metrics: per-round regret,
worst-round regression ratio, regression-round count (<1.0x), win count
(≥1.2x), and rollback count.

Results go to ``benchmarks/results/BENCH_stress.json`` (plus a formatted
``BENCH_stress.txt``) ranking the tuners by safety per stressor; the
per-stressor MAB ``wall_step`` p50s feed the CI perf-trajectory guard.

The headline assertion is the ISSUE 8 acceptance bar: at least one stressor
demonstrably separates the MAB tuner from both DDQN and PDTool on the safety
ranking.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.api import (
    DatabaseSpec,
    SimulationOptions,
    TuningSession,
    create_tuner,
    rank_by_safety,
    registered_tuner_names,
    safety_reports,
)
from repro.workloads import available_stressors, get_benchmark, get_stressor

from conftest import write_result

SMOKE_MODE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

ROUNDS = 8 if SMOKE_MODE else 16
SPEC = DatabaseSpec("ssb", scale_factor=1.0, sample_rows=400, seed=7)
BASELINE = "NoIndex"


def materialise_stressor(name: str):
    """One shared round stream per stressor: every tuner sees identical queries."""
    benchmark = get_benchmark("ssb")
    database = SPEC.create()
    sequence = get_stressor(name)(
        database, benchmark.templates, n_rounds=ROUNDS, seed=3
    )
    return sequence.materialise()


def run_tuner(tuner_name: str, stressor_name: str, workload_rounds) -> tuple:
    """One tuner's run over one stressor; returns ``(RunReport, wall p50 ms)``."""
    database = SPEC.create()
    session = TuningSession(
        database,
        create_tuner(tuner_name, database),
        SimulationOptions(benchmark_name="ssb", workload_type=stressor_name),
    )
    wall_steps = []
    for workload_round in workload_rounds:
        started = time.perf_counter()
        session.step_workload_round(workload_round)
        wall_steps.append(time.perf_counter() - started)
    return session.report, round(statistics.median(wall_steps) * 1e3, 4)


def test_stress_suite(results_dir):
    stressors = available_stressors()
    tuners = registered_tuner_names()
    assert len(stressors) >= 5, f"expected >=5 registered stressors, got {stressors}"
    assert len(tuners) >= 5, f"expected >=5 registered tuners, got {tuners}"

    results: dict[str, dict] = {}
    for stressor_name in stressors:
        workload_rounds = materialise_stressor(stressor_name)
        reports, walls = {}, {}
        for tuner_name in tuners:
            report, wall_p50 = run_tuner(tuner_name, stressor_name, workload_rounds)
            reports[tuner_name] = report
            walls[tuner_name] = wall_p50
        safety = safety_reports(reports, baseline_name=BASELINE)
        ranking = rank_by_safety(safety)
        rows = {}
        for tuner_name, safety_report in safety.items():
            summary = safety_report.summary()
            summary["per_round_regret"] = [
                round(regret, 4) for regret in safety_report.per_round_regret
            ]
            summary["total_seconds"] = round(reports[tuner_name].total_seconds, 4)
            rows[tuner_name] = summary
        results[stressor_name] = {
            "rounds": len(workload_rounds),
            "events": sum(len(r.events) for r in workload_rounds),
            "baseline_total_seconds": round(reports[BASELINE].total_seconds, 4),
            "tuners": rows,
            "safety_ranking": ranking,
            "wall_step": {"p50_ms": walls["MAB"]},
        }

    payload = {
        "benchmark": "ssb",
        "rounds": ROUNDS,
        "smoke_mode": SMOKE_MODE,
        "baseline": BASELINE,
        "stressors": results,
    }
    (results_dir / "BENCH_stress.json").write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"Stress suite on SSB: {len(results)} stressors x {len(tuners)} tuners "
        f"(rounds={ROUNDS}, smoke={SMOKE_MODE}, baseline={BASELINE})"
    ]
    for stressor_name, entry in results.items():
        lines.append(f"  {stressor_name} (safety ranking: {' > '.join(entry['safety_ranking'])})")
        for tuner_name in entry["safety_ranking"]:
            row = entry["tuners"][tuner_name]
            lines.append(
                f"    {tuner_name:>8}: regret {row['total_regret_seconds']:>9.1f} s, "
                f"worst round {row['worst_round_regression_ratio']:>6.3f}x, "
                f"regressions {row['regression_rounds']:>2}, "
                f"wins {row['win_rounds']:>2}, rollbacks {row['rollback_count']:>2}"
            )
    write_result(results_dir, "BENCH_stress", "\n".join(lines))

    # Coverage bar: every stressor raced every registered tuner.
    for stressor_name, entry in results.items():
        assert set(entry["tuners"]) == set(tuners) - {BASELINE}
        for row in entry["tuners"].values():
            assert len(row["per_round_regret"]) == entry["rounds"]
    # The environment-event stressors actually fired events.
    assert results["schema_growth"]["events"] > 0
    assert results["tier_migration"]["events"] > 0
    # The acceptance bar: at least one stressor separates MAB from both
    # DDQN and PDTool on the safety ranking (MAB strictly safer).
    separating = [
        name
        for name, entry in results.items()
        if entry["safety_ranking"].index("MAB")
        < min(
            entry["safety_ranking"].index("DDQN"),
            entry["safety_ranking"].index("PDTool"),
        )
    ]
    assert separating, (
        "no stressor ranked MAB above both DDQN and PDTool: "
        + json.dumps({n: e["safety_ranking"] for n, e in results.items()})
    )
