"""Figures 2 and 3: MAB vs PDTool vs NoIndex on *static* workloads.

Figure 2 plots the total time per round (convergence) for each of the five
benchmarks; Figure 3 summarises the total end-to-end workload time.  The
paper's headline observations for this setting:

* both tuners improve substantially over NoIndex on SSB and TPC-H;
* PDTool retains an edge on uniform static workloads (it is handed a perfectly
  representative training workload and benefits from index merging);
* MAB wins or ties on the skewed benchmarks and on TPC-DS, where PDTool's
  recommendation time and optimiser misestimates start to hurt.
"""

from __future__ import annotations

import pytest

from repro.harness import (
    convergence_series,
    speedup_summary,
    static_experiment,
    totals_summary,
)
from repro.workloads import BENCHMARK_NAMES

from conftest import write_result


@pytest.mark.parametrize("benchmark_name", BENCHMARK_NAMES)
def test_fig2_fig3_static(benchmark, benchmark_name, settings, results_dir):
    """Regenerate the Figure 2 convergence series and Figure 3 totals."""

    def run():
        return static_experiment(benchmark_name, settings)

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    convergence = convergence_series(reports)
    totals = totals_summary(reports)
    speedup = speedup_summary(reports)
    write_result(
        results_dir,
        f"fig2_static_convergence_{benchmark_name}",
        convergence,
    )
    write_result(
        results_dir,
        f"fig3_static_totals_{benchmark_name}",
        totals + "\n" + speedup,
    )

    # Structural assertions: all tuners ran the same rounds, and indexing
    # helps — the better of the two tuners beats NoIndex on execution time
    # (at the quick profile's low round counts the one-off recommendation and
    # creation investments are not always amortised yet, so the total-time
    # check allows a modest margin).
    n_rounds = {report.n_rounds for report in reports.values()}
    assert len(n_rounds) == 1
    noindex = reports["NoIndex"]
    best_tuned_execution = min(
        reports["PDTool"].total_execution_seconds, reports["MAB"].total_execution_seconds
    )
    assert best_tuned_execution < noindex.total_execution_seconds
    best_tuned_total = min(reports["PDTool"].total_seconds, reports["MAB"].total_seconds)
    assert best_tuned_total < noindex.total_seconds * 1.35
    # The bandit's recommendation overhead stays negligible (paper: <1-2 %).
    mab = reports["MAB"]
    assert mab.total_recommendation_seconds < 0.05 * mab.total_seconds
