"""Tiered-placement tuning comparison: does the bandit adapt to *where data lives*?

Races the same MAB tuner over the identical TPC-H quick workload under three
placements of the same data:

* ``all_hdd`` — every table on spinning disk (PR 4's baseline profile);
* ``hot_cold`` — the two hottest tables (``lineitem``, ``orders``) pinned in
  memory via :class:`~repro.api.TieredBackend`, the rest cold on hdd;
* ``cloud`` — every table on the object-store profile (latency-dominated
  random reads).

Index economics differ per placement: indexes on in-memory tables buy almost
nothing (their scans are already CPU-bound), while on the object store only
covering indexes survive the ruinous random-fetch price.  The headline
assertion is the ISSUE 5 acceptance bar: at least two *distinct* converged
index sets across the three placements.

A second scenario turns data movement itself into a workload shift: a run
starts all-hdd, ``promote``\\ s ``lineitem`` into memory mid-run, and later
``demote``\\ s it back — the bandit's observed times (and the value of its
materialised indexes) change under it without any query change.

Results go to ``benchmarks/results/BENCH_tiered.json`` (plus a formatted
``BENCH_tiered.txt``); the per-placement ``wall_step`` p50s feed the CI
perf-trajectory guard.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.api import (
    DatabaseSpec,
    SimulationOptions,
    TieredBackend,
    TuningSession,
    create_tuner,
)
from repro.workloads import StaticWorkload, get_benchmark

from conftest import write_result

SMOKE_MODE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

ROUNDS = 8 if SMOKE_MODE else 20
SPEC = DatabaseSpec("tpch", scale_factor=1.0, sample_rows=500, seed=7)

HOT_TABLES = ("lineitem", "orders")

#: The three placements of the acceptance bar, as SimulationOptions kwargs.
PLACEMENTS = {
    "all_hdd": {"backend": "hdd"},
    "hot_cold": {"table_backends": TieredBackend(hot_tables=HOT_TABLES)},
    "cloud": {"backend": "cloud"},
}


def run_placement(options_kwargs: dict, workload_rounds) -> dict:
    """One MAB run under one placement; returns the serialisable record."""
    database = SPEC.create()
    session = TuningSession(
        database,
        create_tuner("MAB", database),
        SimulationOptions(benchmark_name="tpch", **options_kwargs),
    )
    wall_steps = []
    for workload_round in workload_rounds:
        started = time.perf_counter()
        session.step_workload_round(workload_round)
        wall_steps.append(time.perf_counter() - started)
    report = session.report
    return {
        "backend": database.backend_profile.name,
        "table_backends": {
            name: profile.name
            for name, profile in sorted(database.table_backends.items())
        },
        "per_round_total_seconds": [round(s, 4) for s in report.per_round_totals()],
        "total_seconds": round(report.total_seconds, 4),
        "creation_seconds": round(report.total_creation_seconds, 4),
        "final_configuration": sorted(
            index.index_id for index in database.materialised_indexes
        ),
        "final_index_count": len(database.materialised_indexes),
        "final_index_bytes": database.used_index_bytes,
        "wall_step": {"p50_ms": round(statistics.median(wall_steps) * 1e3, 4)},
    }


def run_migration(workload_rounds) -> dict:
    """Promote/demote ``lineitem`` mid-run: data movement as a workload shift."""
    database = SPEC.create()
    session = TuningSession(
        database,
        create_tuner("MAB", database),
        SimulationOptions(benchmark_name="tpch", backend="hdd"),
    )
    third = max(1, len(workload_rounds) // 3)
    phases = {
        "cold": workload_rounds[:third],
        "promoted": workload_rounds[third : 2 * third],
        "demoted": workload_rounds[2 * third :],
    }
    record: dict = {"hot_table": "lineitem", "phases": {}}
    for phase_name, rounds in phases.items():
        if phase_name == "promoted":
            database.promote("lineitem", "inmemory")
        elif phase_name == "demoted":
            database.demote("lineitem")
        execution = [
            session.step_workload_round(r).execution_seconds for r in rounds
        ]
        record["phases"][phase_name] = {
            "rounds": len(rounds),
            "execution_seconds": [round(s, 4) for s in execution],
            "mean_execution_seconds": round(statistics.fmean(execution), 4),
            "configuration": sorted(
                index.index_id for index in database.materialised_indexes
            ),
        }
    return record


def test_tiered_comparison(results_dir):
    # One workload materialisation shared by every placement: placement only
    # re-times execution, so all runs face byte-identical query streams.
    benchmark = get_benchmark("tpch")
    workload_rounds = StaticWorkload(
        SPEC.create(), benchmark.templates, n_rounds=ROUNDS, seed=1
    ).materialise()

    results = {
        name: run_placement(kwargs, workload_rounds)
        for name, kwargs in PLACEMENTS.items()
    }
    migration = run_migration(workload_rounds)

    final_sets = {name: frozenset(r["final_configuration"]) for name, r in results.items()}
    distinct_sets = len(set(final_sets.values()))
    payload = {
        "benchmark": "tpch",
        "rounds": ROUNDS,
        "smoke_mode": SMOKE_MODE,
        "tuner": "MAB",
        "hot_tables": list(HOT_TABLES),
        "placements": results,
        "distinct_final_sets": distinct_sets,
        "migration": migration,
    }
    (results_dir / "BENCH_tiered.json").write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"MAB on TPC-H quick across placements (rounds={ROUNDS}, smoke={SMOKE_MODE})"
    ]
    for name, entry in results.items():
        placement = entry["table_backends"] or f"uniform {entry['backend']}"
        lines.append(
            f"  {name:>8}: total {entry['total_seconds']:>10.1f} s model-time, "
            f"final {entry['final_index_count']:>2} indexes / "
            f"{entry['final_index_bytes'] / 1e6:>7.1f} MB  ({placement})"
        )
    lines.append(f"  distinct converged index sets: {distinct_sets} of {len(results)}")
    means = {
        phase: record["mean_execution_seconds"]
        for phase, record in migration["phases"].items()
    }
    lines.append(
        "  migration (promote/demote lineitem): mean exec "
        f"cold {means['cold']:.1f} s -> promoted {means['promoted']:.1f} s "
        f"-> demoted {means['demoted']:.1f} s"
    )
    write_result(results_dir, "BENCH_tiered", "\n".join(lines))

    # The acceptance bar: placement changes what the bandit converges to,
    # not just how fast the same configuration runs.
    assert distinct_sets >= 2, f"all placements converged identically: {final_sets}"
    # Hot tables in memory must make the same workload cheaper than all-hdd.
    assert results["hot_cold"]["total_seconds"] < results["all_hdd"]["total_seconds"]
    # Every run actually built something.
    for name, entry in results.items():
        assert entry["final_index_count"] >= 1, f"{name} built no indexes"
        assert entry["creation_seconds"] > 0
    # The migration is visible in the observations: promoting the dominant
    # table cuts the mean round execution time, demoting raises it again.
    assert means["promoted"] < means["cold"]
    assert means["demoted"] > means["promoted"]
