"""Multi-backend tuning comparison: does the bandit adapt to the storage tier?

Races the same MAB tuner over the identical TPC-H quick workload on each
registered backend profile (``hdd``/``ssd``/``inmemory``/``cloud``) and
records, per backend, the convergence series and the final index
configuration.  The
point of the scenario axis: index economics change with the storage tier —
random I/O is what secondary indexes buy their keep with, so when it gets
~25x cheaper (ssd) the tuner should converge to a *different*, typically
leaner, configuration than on spinning disks.

Results go to ``benchmarks/results/BENCH_backends.json`` (plus a formatted
``BENCH_backends.txt``) so the behavioural gap is tracked from PR to PR.
The headline assertion is the ISSUE 4 acceptance bar: the MAB tuner selects
measurably different final index sets (or budgets) on ``ssd`` vs ``hdd``.
"""

from __future__ import annotations

import json
import os

from repro.api import DatabaseSpec, SimulationOptions, TuningSession, create_tuner
from repro.engine import get_backend, registered_backend_names
from repro.workloads import StaticWorkload, get_benchmark

from conftest import write_result

SMOKE_MODE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

ROUNDS = 8 if SMOKE_MODE else 20
SPEC = DatabaseSpec("tpch", scale_factor=1.0, sample_rows=500, seed=7)


def run_backend(backend_name: str, workload_rounds) -> dict:
    """One MAB run on one backend; returns the serialisable result record."""
    database = SPEC.create()
    session = TuningSession(
        database,
        create_tuner("MAB", database),
        SimulationOptions(benchmark_name="tpch", backend=backend_name),
    )
    for workload_round in workload_rounds:
        session.step_workload_round(workload_round)
    report = session.report
    return {
        "profile": get_backend(backend_name).summary(),
        "per_round_total_seconds": [round(s, 4) for s in report.per_round_totals()],
        "per_round_execution_seconds": [round(s, 4) for s in report.per_round_execution()],
        "total_seconds": round(report.total_seconds, 4),
        "creation_seconds": round(report.total_creation_seconds, 4),
        "final_configuration": sorted(
            index.index_id for index in database.materialised_indexes
        ),
        "final_index_count": len(database.materialised_indexes),
        "final_index_bytes": database.used_index_bytes,
    }


def test_backend_comparison(results_dir):
    # One workload materialisation shared by every backend: the profile only
    # re-times execution, so all runs face byte-identical query streams.
    benchmark = get_benchmark("tpch")
    workload_rounds = StaticWorkload(
        SPEC.create(), benchmark.templates, n_rounds=ROUNDS, seed=1
    ).materialise()

    backends = registered_backend_names()
    results = {name: run_backend(name, workload_rounds) for name in backends}

    payload = {
        "benchmark": "tpch",
        "rounds": ROUNDS,
        "smoke_mode": SMOKE_MODE,
        "tuner": "MAB",
        "backends": results,
    }
    (results_dir / "BENCH_backends.json").write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"MAB on TPC-H quick across storage backends (rounds={ROUNDS}, smoke={SMOKE_MODE})"]
    for name in backends:
        entry = results[name]
        lines.append(
            f"  {name:>8}: total {entry['total_seconds']:>10.1f} s model-time, "
            f"final {entry['final_index_count']:>2} indexes / "
            f"{entry['final_index_bytes'] / 1e6:>7.1f} MB "
            f"(rand/seq ratio {entry['profile']['random_to_sequential_ratio']})"
        )
    hdd_set = set(results["hdd"]["final_configuration"])
    ssd_set = set(results["ssd"]["final_configuration"])
    lines.append(
        f"  hdd vs ssd final sets: {len(hdd_set & ssd_set)} shared, "
        f"{len(hdd_set - ssd_set)} hdd-only, {len(ssd_set - hdd_set)} ssd-only"
    )
    write_result(results_dir, "BENCH_backends", "\n".join(lines))

    # The same workload gets cheaper down the storage tiers...
    assert (
        results["hdd"]["total_seconds"]
        > results["ssd"]["total_seconds"]
        > results["inmemory"]["total_seconds"]
    )
    # ...and the bandit *behaves* differently, not just faster: the converged
    # configuration on flash differs measurably from the spinning-disk one
    # (acceptance bar: different final index sets, or different budgets).
    assert (
        hdd_set != ssd_set
        or results["hdd"]["final_index_bytes"] != results["ssd"]["final_index_bytes"]
    ), "MAB converged to identical configurations on hdd and ssd"
    # every run actually built something
    for name in backends:
        assert results[name]["final_index_count"] >= 1
        assert results[name]["creation_seconds"] > 0
