"""Figures 6 and 7: MAB vs PDTool vs NoIndex on *dynamic random* (ad-hoc) workloads.

Queries are drawn at random with a ~50 % round-to-round repeat rate, modelling
cloud-style ad-hoc analytics.  PDTool is invoked every four rounds on the
queries seen since its previous invocation; its recommendation time therefore
recurs throughout the run (the five spikes of Figure 6), and on TPC-DS it can
push PDTool's total above NoIndex (Figure 7) — the setting where the paper
reports MAB's largest speed-ups (up to 75 %).
"""

from __future__ import annotations

import pytest

from repro.harness import (
    convergence_series,
    random_experiment,
    speedup_percentage,
    speedup_summary,
    totals_summary,
)
from repro.workloads import BENCHMARK_NAMES

from conftest import write_result


@pytest.mark.parametrize("benchmark_name", BENCHMARK_NAMES)
def test_fig6_fig7_random(benchmark, benchmark_name, settings, results_dir):
    """Regenerate the Figure 6 convergence series and Figure 7 totals."""

    def run():
        return random_experiment(benchmark_name, settings)

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    write_result(
        results_dir,
        f"fig6_random_convergence_{benchmark_name}",
        convergence_series(reports),
    )
    speedup = speedup_percentage(
        reports["PDTool"].total_seconds, reports["MAB"].total_seconds
    )
    write_result(
        results_dir,
        f"fig7_random_totals_{benchmark_name}",
        totals_summary(reports) + "\n" + speedup_summary(reports),
    )

    assert all(report.n_rounds == settings.random_rounds for report in reports.values())
    # PDTool pays recurring recommendation time in this regime; MAB does not.
    assert reports["PDTool"].total_recommendation_seconds > 0
    assert (
        reports["MAB"].total_recommendation_seconds
        < reports["PDTool"].total_recommendation_seconds
    )
    # The paper's headline: under ad-hoc workloads the bandit's end-to-end
    # time is competitive with (and on most benchmarks better than) PDTool's.
    assert speedup > -40.0
