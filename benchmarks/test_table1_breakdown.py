"""Table I: total time breakdown (recommendation / creation / execution / total).

The paper's Table I reports, for every (workload regime x benchmark) cell, the
minutes each tuner spends recommending, creating indexes and executing
queries.  Two qualitative observations drive the paper's "final verdict":

* MAB's recommendation time is negligible and stable, while PDTool's grows
  with workload size and complexity (TPC-DS dynamic random is the extreme);
* MAB spends more on index creation (it explores by materialising), yet its
  execution time is better in most cells.

This benchmark regenerates the full breakdown and the exploration-cost
summary of Section V-B3.  To keep the default run short it covers a
representative subset of benchmarks per regime; set the environment variable
``REPRO_BENCH_PROFILE=paper`` and edit ``BENCHMARKS`` below to run all 15
cells at full scale.
"""

from __future__ import annotations

from repro.harness import exploration_cost_summary, table1_breakdown, table1_breakdown_experiment

from conftest import PROFILE, write_result

#: Benchmarks per regime covered in the default (quick) profile.
BENCHMARKS = ("ssb", "tpch", "tpch_skew", "tpcds", "imdb") if PROFILE == "paper" else (
    "ssb", "tpch_skew", "imdb"
)
WORKLOAD_TYPES = ("static", "shifting", "random")


def test_table1_breakdown(benchmark, settings, results_dir):
    """Regenerate Table I (and the exploration-cost discussion of Section V-B3)."""

    def run():
        return table1_breakdown_experiment(
            benchmark_names=BENCHMARKS,
            workload_types=WORKLOAD_TYPES,
            settings=settings,
            tuners=("PDTool", "MAB"),
        )

    breakdown = benchmark.pedantic(run, rounds=1, iterations=1)

    write_result(results_dir, "table1_breakdown", table1_breakdown(breakdown))
    exploration_lines = []
    for workload_type, benchmarks in breakdown.items():
        for benchmark_name, reports in benchmarks.items():
            exploration_lines.append(f"[{workload_type} / {benchmark_name}]")
            exploration_lines.append(exploration_cost_summary(reports))
    write_result(results_dir, "table1_exploration_cost", "\n".join(exploration_lines))

    # Every requested cell is present and fully populated.
    assert set(breakdown) == set(WORKLOAD_TYPES)
    for workload_type in WORKLOAD_TYPES:
        assert set(breakdown[workload_type]) == set(BENCHMARKS)
        for reports in breakdown[workload_type].values():
            assert {"PDTool", "MAB"} <= set(reports)

    # The paper's structural claims about recommendation time: MAB's stays
    # negligible in every cell; PDTool's is largest in the dynamic random
    # regime (it is re-invoked throughout the run on growing workloads).
    for workload_type in WORKLOAD_TYPES:
        for reports in breakdown[workload_type].values():
            mab = reports["MAB"]
            assert mab.total_recommendation_seconds < 0.05 * max(mab.total_seconds, 1.0)
    for benchmark_name in BENCHMARKS:
        static_pdtool = breakdown["static"][benchmark_name]["PDTool"]
        random_pdtool = breakdown["random"][benchmark_name]["PDTool"]
        assert (
            random_pdtool.total_recommendation_seconds
            >= static_pdtool.total_recommendation_seconds
        )
