"""Figure 8: MAB vs DDQN / DDQN-SC vs PDTool on static TPC-H and TPC-H Skew.

The paper's "Why Not (General) Reinforcement Learning?" section compares the
bandit against a double-DQN agent (4x8 hidden layers, gamma 0.99, epsilon
decaying 1 -> 0.01 over 2,400 samples) and its single-column variant, over 100
rounds repeated 10 times.  Its findings: the bandit converges faster and more
consistently (narrow inter-quartile range), DDQN beats DDQN-SC on execution
time thanks to its richer candidate space, and MAB beats both end to end.

The quick profile uses fewer rounds and repetitions; the aggregation (mean,
median, inter-quartile range) matches the paper's plots.
"""

from __future__ import annotations

import pytest

from repro.harness import aggregate_rl_series, format_table, rl_comparison_experiment

from conftest import write_result

TUNERS = ("PDTool", "MAB", "DDQN", "DDQN_SC")


@pytest.mark.parametrize("benchmark_name", ["tpch", "tpch_skew"])
def test_fig8_rl_comparison(benchmark, benchmark_name, settings, results_dir):
    """Regenerate Figure 8 (a-d): totals and convergence with repetition spread."""

    def run():
        return rl_comparison_experiment(benchmark_name, settings, tuners=TUNERS)

    repetition_reports = benchmark.pedantic(run, rounds=1, iterations=1)

    # Totals broken down by component, averaged over repetitions (Fig. 8 a/b).
    rows = []
    for tuner in TUNERS:
        reports = repetition_reports[tuner]
        n = len(reports)
        rows.append([
            tuner,
            f"{sum(r.total_recommendation_seconds for r in reports) / n:.1f}",
            f"{sum(r.total_creation_seconds for r in reports) / n:.1f}",
            f"{sum(r.total_execution_seconds for r in reports) / n:.1f}",
            f"{sum(r.total_seconds for r in reports) / n:.1f}",
        ])
    totals_table = format_table(
        ["tuner", "recommendation_s", "creation_s", "execution_s", "total_s"], rows
    )
    write_result(results_dir, f"fig8_totals_{benchmark_name}", totals_table)

    # Convergence with median and inter-quartile range (Fig. 8 c/d).
    series_rows = []
    aggregated = {tuner: aggregate_rl_series(repetition_reports[tuner]) for tuner in TUNERS}
    n_rounds = len(aggregated["MAB"]["median"])
    for position in range(n_rounds):
        row = [str(position + 1)]
        for tuner in TUNERS:
            series = aggregated[tuner]
            row.append(
                f"{series['median'][position]:.0f}"
                f" [{series['q1'][position]:.0f},{series['q3'][position]:.0f}]"
            )
        series_rows.append(row)
    convergence_table = format_table(["round"] + [f"{t} median[q1,q3]" for t in TUNERS], series_rows)
    write_result(results_dir, f"fig8_convergence_{benchmark_name}", convergence_table)

    # Structural checks mirroring the paper's qualitative claims.
    assert all(len(repetition_reports[t]) == settings.rl_repetitions for t in TUNERS)
    mab_mean_total = sum(r.total_seconds for r in repetition_reports["MAB"]) / settings.rl_repetitions
    ddqn_mean_total = sum(r.total_seconds for r in repetition_reports["DDQN"]) / settings.rl_repetitions
    noindex_like_bound = max(r.total_seconds for r in repetition_reports["DDQN_SC"]) * 3
    assert mab_mean_total < noindex_like_bound
    # MAB's recommendation overhead stays negligible even over many rounds.
    assert all(
        r.total_recommendation_seconds < 0.05 * r.total_seconds
        for r in repetition_reports["MAB"]
    )
    # The bandit is at least competitive with the deep-RL agent end to end.
    assert mab_mean_total <= ddqn_mean_total * 1.25
