"""Shared configuration for the paper-reproduction benchmark suite.

Every file in this directory regenerates one table or figure of the paper's
evaluation section (see DESIGN.md section 4 for the index).  The experiments
run at a reduced default scale — smaller table samples and fewer rounds than
the paper — so the whole suite finishes in minutes on a laptop; the *shape* of
each comparison (who wins, rough factors, where crossovers fall) is what the
suite verifies and reports.

Formatted result tables are written to ``benchmarks/results/`` so they can be
inspected after a ``pytest benchmarks/ --benchmark-only`` run, and the most
important series are also echoed to stdout.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import ExperimentSettings

#: Directory where formatted result tables are written.
RESULTS_DIR = Path(__file__).parent / "results"

#: Scale profile: "quick" (default) or "paper" (full parameters), selected via
#: the REPRO_BENCH_PROFILE environment variable.
PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "quick")


def benchmark_settings() -> ExperimentSettings:
    """Experiment settings for the active profile."""
    if PROFILE == "paper":
        return ExperimentSettings()
    return ExperimentSettings.quick()


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return benchmark_settings()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, content: str) -> None:
    """Persist a formatted result table and echo it for the console log."""
    path = results_dir / f"{name}.txt"
    path.write_text(content + "\n")
    print(f"\n===== {name} =====\n{content}\n")
